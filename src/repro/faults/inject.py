"""Runtime fault injection: wrapping sources and arming hooks.

:class:`FaultInjector` turns a :class:`~repro.faults.spec.FaultPlan`
into live perturbations at the three seams the system exposes:

* **telemetry** — :meth:`FaultInjector.wrap_feed` wraps a
  :class:`~repro.engine.sources.TelemetryFeed` in a
  :class:`FaultyTelemetryFeed` that serves dropped (NaN), stuck,
  delayed and corrupted readings;
* **hardware** — :meth:`FaultInjector.bvt_verdict` is the failure hook
  :class:`~repro.bvt.transceiver.Bvt` consults before each modulation
  change (fail outright, or fall back to the laser power-cycle path);
* **solver** — :meth:`FaultInjector.te_fails` decides whether a TE
  solve raises :class:`~repro.te.solution.TeSolverError` this attempt.

Determinism: telemetry faults are *positionally* keyed — windows are
drawn once per ``(spec, link)`` from a dedicated component stream, and
per-sample corruption uses an rng keyed on ``(seed, spec, link,
sample-index)`` — so reading the feed in any order (full walks,
strided TE rounds, random access) yields the same faulted values.
Hook draws (``bvt``/``te``) are sequential per component stream, which
is deterministic because the engine dispatches events in a total
order.  The injector carries per-kind counters (:attr:`counts`) so a
run can report its fault exposure.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Mapping

import numpy as np

from repro.engine.sources import TelemetryFeed, TelemetrySample
from repro.faults.spec import FaultPlan, FaultSpec
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.seeds import component_rng, component_seed
from repro.state import NetworkState, StateStore


def as_injector(faults: "FaultPlan | FaultInjector | None") -> "FaultInjector | None":
    """Normalise the simulators' ``faults=`` knob.

    ``None`` passes through (the zero-cost disabled path), a
    :class:`~repro.faults.spec.FaultPlan` is armed into a fresh
    :class:`FaultInjector`, and an existing injector is reused as-is
    (so a caller can inspect :attr:`FaultInjector.counts` afterwards).
    """
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultPlan):
        return FaultInjector(faults)
    raise TypeError(
        f"faults must be a FaultPlan, FaultInjector or None, "
        f"got {type(faults).__name__}"
    )


class FaultInjector:
    """Live injection state for one plan over one run."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        #: observed fault applications by kind (accounting, not control)
        self.counts: dict[str, int] = {}
        self._bvt_rngs: dict[str, np.random.Generator] = {}
        self._te_rng = component_rng(plan.seed, "faults.te")
        #: what the controller *sees* vs what the network *is*: two
        #: state lineages from a shared ancestor (None until a state
        #: holder calls :meth:`attach_state`)
        self.observed_states: StateStore | None = None
        self.truth_states: StateStore | None = None

    def count(self, kind: str, n: int = 1) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + n
        # observability: every activation is a labelled counter and,
        # when a tracer is active, a point event on the run timeline
        _metrics.counter("faults.activated", kind=kind).inc(n)
        _trace.point("fault.activated", kind=kind, n=n)

    # -- state lineages -----------------------------------------------------

    def attach_state(self, base: NetworkState) -> None:
        """Root the observed/truth lineages at a shared ancestor.

        The controller calls this from ``bind_faults`` with its current
        snapshot.  From then on every telemetry sample whose faulted
        view diverges from the true SNR is published as one transition
        on *each* lineage — same version, different ``snr_db`` values —
        so the per-version diff between the two stores is exactly the
        corruption this plan introduced, and :meth:`ground_truth`
        becomes literally a parallel state lineage.
        """
        self.observed_states = StateStore(base, name="observed")
        self.truth_states = StateStore(base, name="truth")

    def record_sample(
        self,
        index: int,
        truth: Mapping[str, float],
        observed: Mapping[str, float],
    ) -> None:
        """Publish one diverged sample onto both lineages (no-op when
        no state is attached or the sample is clean)."""
        if self.observed_states is None or self.truth_states is None:
            return
        known = self.observed_states.latest.links
        diverged = [
            link_id
            for link_id, seen in observed.items()
            if link_id in known
            and not (seen == truth[link_id]
                     or (seen != seen and truth[link_id] != truth[link_id]))
        ]
        if not diverged:
            return
        label = f"sample:{index}"
        self.observed_states.commit(
            self.observed_states.latest.evolve(
                {l: {"snr_db": observed[l]} for l in diverged}, label=label
            )
        )
        self.truth_states.commit(
            self.truth_states.latest.evolve(
                {l: {"snr_db": truth[l]} for l in diverged}, label=label
            )
        )

    # -- telemetry seam -----------------------------------------------------

    def wrap_feed(self, feed: TelemetryFeed) -> TelemetryFeed:
        """The feed as the controller will see it under this plan."""
        if not self.plan.has_telemetry_faults:
            return feed
        return FaultyTelemetryFeed(feed, self)

    # -- hardware seam ------------------------------------------------------

    def bvt_verdict(self, link_id: str) -> str | None:
        """One pre-change draw: ``None`` (proceed), ``"fail"`` or
        ``"power_cycle"``."""
        p_fail = self.plan.probability("bvt.failure", link_id)
        p_cycle = self.plan.probability("bvt.power_cycle", link_id)
        if p_fail <= 0.0 and p_cycle <= 0.0:
            return None
        if link_id not in self._bvt_rngs:
            self._bvt_rngs[link_id] = component_rng(
                self.plan.seed, f"faults.bvt.{link_id}"
            )
        u = float(self._bvt_rngs[link_id].random())
        if u < p_fail:
            self.count("bvt.failure")
            return "fail"
        if u < p_fail + p_cycle:
            self.count("bvt.power_cycle")
            return "power_cycle"
        return None

    # -- solver seam --------------------------------------------------------

    def te_fails(self) -> bool:
        """One per-attempt draw for the TE entry point."""
        p = self.plan.probability("te.exception")
        if p <= 0.0:
            return False
        if float(self._te_rng.random()) < p:
            self.count("te.exception")
            return True
        return False

    # -- crash seam ---------------------------------------------------------

    def crash_seam(self, round_index: int) -> str | None:
        """Where a ``controller.crash`` fault strikes this round, if at all.

        Consulted by the controller's round-commit protocol; purely
        deterministic (round index match, no draw), so crash faults
        perturb no other stream.
        """
        for spec in self.plan.specs:
            if spec.kind == "controller.crash" and spec.crash_round == round_index:
                self.count("controller.crash")
                return spec.crash_seam
        return None

    # -- crash recovery -----------------------------------------------------

    def runtime_payload(self) -> dict[str, object]:
        """The injector's *sequential* streams, for the journal.

        Only the ``bvt.*``/``te.*`` draws advance one-at-a-time with
        the run and must be restored exactly; telemetry faults are
        positionally keyed (and their counts — like the lineage
        commits — are naturally re-counted when a resumed run re-reads
        the feed from the start), so they need nothing here.
        """
        return {
            "te_rng": self._te_rng.bit_generator.state,
            "bvt_rngs": {
                link_id: rng.bit_generator.state
                for link_id, rng in sorted(self._bvt_rngs.items())
            },
            "counts": {
                kind: n
                for kind, n in sorted(self.counts.items())
                if kind.startswith(("bvt.", "te."))
            },
        }

    def restore_runtime(self, payload: Mapping[str, object]) -> None:
        """Set (never add to) the sequential streams from a journal."""
        self._te_rng = np.random.default_rng(0)
        self._te_rng.bit_generator.state = payload["te_rng"]
        self._bvt_rngs = {}
        for link_id, state in payload["bvt_rngs"].items():
            rng = np.random.default_rng(0)
            rng.bit_generator.state = state
            self._bvt_rngs[link_id] = rng
        for kind, n in payload["counts"].items():
            self.counts[kind] = int(n)


def _draw_windows(
    spec: FaultSpec,
    spec_index: int,
    link_id: str,
    *,
    seed: int,
    start_s: float,
    duration_s: float,
) -> tuple[list[float], list[float]]:
    """Sorted ``(starts, ends)`` of one spec's windows on one link.

    Window count is Poisson in ``rate_per_day`` over the horizon,
    starts are uniform, lengths exponential with mean ``duration_s`` —
    all from one component stream, so the windows depend only on
    ``(plan seed, spec, link)``, never on read order.
    """
    if spec.rate_per_day <= 0.0 or duration_s <= 0.0:
        return [], []
    rng = component_rng(seed, f"faults.{spec.kind}[{spec_index}].{link_id}")
    expected = spec.rate_per_day * duration_s / 86_400.0
    n = int(rng.poisson(expected))
    if n == 0:
        return [], []
    starts = np.sort(start_s + duration_s * rng.random(n))
    lengths = rng.exponential(spec.duration_s, size=n) if spec.duration_s else np.zeros(n)
    return [float(t) for t in starts], [float(t + d) for t, d in zip(starts, lengths)]


class _WindowSet:
    """Membership test over one link's sorted fault windows."""

    def __init__(self, starts: list[float], ends: list[float]):
        self.starts = starts
        self.ends = ends

    def __bool__(self) -> bool:
        return bool(self.starts)

    def covers(self, time_s: float) -> bool:
        i = bisect.bisect_right(self.starts, time_s) - 1
        return i >= 0 and time_s < self.ends[i]


class FaultyTelemetryFeed(TelemetryFeed):
    """A :class:`TelemetryFeed` serving its base feed through the plan.

    Per-sample, per-link, faults compose in a fixed order (documented so
    overlap behaviour is part of the contract):

    1. **delay** — inside a delay window the value is re-read from
       ``delay_samples`` grid points earlier (clamped at the start);
    2. **stuck** — inside a stuck window the value is frozen at the
       last pre-window reading;
    3. **corrupt** — a Bernoulli hit adds a Gaussian offset;
    4. **dropout** — inside a dropout window the value is NaN,
       overriding everything else.

    The wrapper validates exactly like the base feed (same timebase,
    same links) and keeps :attr:`base` for ground-truth access — the
    chaos harness compares controller decisions against the true SNR.
    """

    def __init__(self, base: TelemetryFeed, injector: FaultInjector):
        super().__init__(base.traces_by_link)
        self.base = base
        self.injector = injector
        plan = injector.plan
        tb = base.timebase
        self._windows: dict[str, dict[str, _WindowSet]] = {}
        self._delay_by_link: dict[str, int] = {}
        self._corrupt_specs: list[tuple[int, FaultSpec]] = [
            (i, s)
            for i, s in enumerate(plan.specs)
            if s.kind == "telemetry.corrupt"
        ]
        for kind in ("telemetry.dropout", "telemetry.stuck", "telemetry.delay"):
            per_link: dict[str, _WindowSet] = {}
            for link_id in base.traces_by_link:
                starts: list[float] = []
                ends: list[float] = []
                for i, s in enumerate(plan.specs):
                    if s.kind != kind or not s.applies_to(link_id):
                        continue
                    w_starts, w_ends = _draw_windows(
                        s, i, link_id,
                        seed=plan.seed,
                        start_s=tb.start_s,
                        duration_s=tb.duration_s,
                    )
                    starts.extend(w_starts)
                    ends.extend(w_ends)
                    if kind == "telemetry.delay":
                        self._delay_by_link[link_id] = max(
                            self._delay_by_link.get(link_id, 0), s.delay_samples
                        )
                order = sorted(range(len(starts)), key=starts.__getitem__)
                per_link[link_id] = _WindowSet(
                    [starts[j] for j in order], [ends[j] for j in order]
                )
            self._windows[kind] = per_link

    # -- the faulted view ---------------------------------------------------

    def _true_value(self, link_id: str, index: int) -> float:
        return float(self.base.traces_by_link[link_id].snr_db[index])

    def _corrupt(self, link_id: str, index: int, value: float) -> float:
        for spec_index, spec in self._corrupt_specs:
            if spec.probability <= 0.0 or not spec.applies_to(link_id):
                continue
            rng = np.random.default_rng(
                component_seed(
                    self.injector.plan.seed,
                    f"faults.telemetry.corrupt[{spec_index}].{link_id}",
                    offset=index,
                )
            )
            if float(rng.random()) < spec.probability:
                value += spec.magnitude_db * float(rng.standard_normal())
                self.injector.count("telemetry.corrupt")
        return value

    def _faulted_value(self, link_id: str, index: int, time_s: float) -> float:
        value = self._true_value(link_id, index)
        delay_ws = self._windows["telemetry.delay"].get(link_id)
        if delay_ws and delay_ws.covers(time_s):
            shifted = max(index - self._delay_by_link.get(link_id, 0), 0)
            if shifted != index:
                value = self._true_value(link_id, shifted)
                self.injector.count("telemetry.delay")
        stuck_ws = self._windows["telemetry.stuck"].get(link_id)
        if stuck_ws and stuck_ws.covers(time_s):
            start = bisect.bisect_right(stuck_ws.starts, time_s) - 1
            tb = self.timebase
            first_inside = int(
                np.ceil((stuck_ws.starts[start] - tb.start_s) / tb.interval_s)
            )
            frozen_at = max(min(first_inside, index) - 1, 0)
            value = self._true_value(link_id, frozen_at)
            self.injector.count("telemetry.stuck")
        value = self._corrupt(link_id, index, value)
        drop_ws = self._windows["telemetry.dropout"].get(link_id)
        if drop_ws and drop_ws.covers(time_s):
            self.injector.count("telemetry.dropout")
            return float("nan")
        return value

    def _transform(self, sample: TelemetrySample) -> TelemetrySample:
        observed = {
            link_id: self._faulted_value(link_id, sample.index, sample.time_s)
            for link_id in sample.snr_db
        }
        self.injector.record_sample(sample.index, sample.snr_db, observed)
        return TelemetrySample(
            index=sample.index,
            time_s=sample.time_s,
            snr_db=observed,
        )

    def sample(self, index: int) -> TelemetrySample:
        return self._transform(self.base.sample(index))

    def iter_samples(
        self, *, stride: int = 1, max_samples: int | None = None
    ) -> Iterator[TelemetrySample]:
        for sample in self.base.iter_samples(stride=stride, max_samples=max_samples):
            yield self._transform(sample)

    def ground_truth(self, index: int) -> Mapping[str, float]:
        """The unfaulted SNR dict at one grid point."""
        return self.base.sample(index).snr_db
