"""Declarative, seed-keyed fault descriptions.

A :class:`FaultSpec` names one failure mode and its intensity; a
:class:`FaultPlan` is the complete fault environment of a run — a tuple
of specs plus the seed every injection stream derives from.  Plans are
plain data: serializable to/from dicts (so a TOML sweep axis can carry
one), scalable by a single ``intensity`` knob (the chaos harness sweeps
it), and hashable into artifact keys like any other parameter.

The supported kinds mirror where the paper's operational story can
break (§2 rare-but-dramatic SNR behaviour, §3.1 reconfiguration
procedures):

===================  ======================================================
kind                 meaning
===================  ======================================================
telemetry.dropout    windows where a link's SNR samples go missing (NaN)
telemetry.stuck      windows where a link's reading freezes at the last
                     pre-window value
telemetry.corrupt    per-sample Bernoulli corruption: a Gaussian offset of
                     ``magnitude_db`` standard deviation is added
telemetry.delay      windows where the feed serves samples ``delay_samples``
                     grid points old
bvt.failure          a modulation change attempt fails outright (the
                     controller must retry or degrade)
bvt.power_cycle      the efficient in-service swap times out and the BVT
                     falls back to the laser power-cycle path (§3.1) —
                     the change lands, but at standard-procedure downtime
te.exception         the TE solver raises for this round's solve
controller.crash     the controller process dies at round ``crash_round``,
                     at seam ``crash_seam`` of the round-commit protocol
                     (``pre-commit`` / ``post-commit`` / ``mid-write``,
                     the last tearing the journal frame on disk) —
                     deterministic, no randomness involved
===================  ======================================================

Randomness never lives here: specs are pure data, and all draws happen
in :mod:`repro.faults.inject` from :func:`repro.seeds.component_rng`
streams keyed on ``(plan.seed, kind, link)`` — so two runs of the same
plan are bit-identical, and scenarios sweeping seeds cannot alias.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

#: every fault kind a spec may name
KINDS = (
    "telemetry.dropout",
    "telemetry.stuck",
    "telemetry.corrupt",
    "telemetry.delay",
    "bvt.failure",
    "bvt.power_cycle",
    "te.exception",
    "controller.crash",
)

#: kinds realised as per-link time windows drawn over the horizon
WINDOWED_KINDS = ("telemetry.dropout", "telemetry.stuck", "telemetry.delay")

#: kinds realised as per-event Bernoulli draws
BERNOULLI_KINDS = ("telemetry.corrupt", "bvt.failure", "bvt.power_cycle", "te.exception")

#: kinds that fire deterministically (no rate, no probability, no rng)
DETERMINISTIC_KINDS = ("controller.crash",)

#: where in the round-commit protocol a controller.crash fault strikes
CRASH_SEAMS = ("pre-commit", "post-commit", "mid-write")


@dataclass(frozen=True)
class FaultSpec:
    """One failure mode and its intensity.

    Attributes:
        kind: one of :data:`KINDS`.
        rate_per_day: expected fault windows per link per day (windowed
            kinds only).
        duration_s: mean window length, drawn exponentially (windowed
            kinds only).
        probability: per-sample (``telemetry.corrupt``) or per-attempt
            (``bvt.*``, ``te.exception``) fault probability.
        magnitude_db: standard deviation of the corruption offset
            (``telemetry.corrupt`` only).
        delay_samples: staleness, in grid points, served during a delay
            window (``telemetry.delay`` only).
        links: restrict the spec to these link ids; ``None`` = every
            link the run knows.
        crash_round: the round index a ``controller.crash`` fault
            strikes at (0-based, counted over committed rounds).
        crash_seam: where in the round-commit protocol it strikes —
            one of :data:`CRASH_SEAMS` (``controller.crash`` only).
    """

    kind: str
    rate_per_day: float = 0.0
    duration_s: float = 0.0
    probability: float = 0.0
    magnitude_db: float = 0.0
    delay_samples: int = 0
    links: tuple[str, ...] | None = None
    crash_round: int = 0
    crash_seam: str = "post-commit"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (valid: {KINDS})")
        if self.rate_per_day < 0:
            raise ValueError("rate_per_day must be non-negative")
        if self.duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.magnitude_db < 0:
            raise ValueError("magnitude_db must be non-negative")
        if self.delay_samples < 0:
            raise ValueError("delay_samples must be non-negative")
        if self.crash_round < 0:
            raise ValueError("crash_round must be non-negative")
        if self.crash_seam not in CRASH_SEAMS:
            raise ValueError(
                f"unknown crash seam {self.crash_seam!r} (valid: {CRASH_SEAMS})"
            )
        if self.kind in WINDOWED_KINDS and self.probability:
            raise ValueError(f"{self.kind} is windowed; set rate_per_day, not probability")
        if self.kind in BERNOULLI_KINDS and self.rate_per_day:
            raise ValueError(f"{self.kind} is per-event; set probability, not rate_per_day")
        if self.kind in DETERMINISTIC_KINDS and (self.rate_per_day or self.probability):
            raise ValueError(
                f"{self.kind} is deterministic; set crash_round/crash_seam, "
                "not rate_per_day or probability"
            )

    def applies_to(self, link_id: str) -> bool:
        return self.links is None or link_id in self.links

    def scaled(self, intensity: float) -> "FaultSpec":
        """This spec at ``intensity`` times the rate (probability capped at 1)."""
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        return replace(
            self,
            rate_per_day=self.rate_per_day * intensity,
            probability=min(self.probability * intensity, 1.0),
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind}
        for name in ("rate_per_day", "duration_s", "probability", "magnitude_db"):
            value = getattr(self, name)
            if value:
                out[name] = value
        if self.delay_samples:
            out["delay_samples"] = self.delay_samples
        if self.links is not None:
            out["links"] = list(self.links)
        if self.kind in DETERMINISTIC_KINDS:
            out["crash_round"] = self.crash_round
            out["crash_seam"] = self.crash_seam
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        payload = dict(data)
        links = payload.pop("links", None)
        return cls(
            **payload, links=tuple(links) if links is not None else None
        )


@dataclass(frozen=True)
class FaultPlan:
    """The complete fault environment of one run.

    ``seed`` keys every injection stream; everything else is the spec
    tuple.  An empty plan is a legal no-op (the injector then never
    perturbs anything), but the provably-zero-cost path is passing
    ``faults=None`` to the simulators — no injector is built at all.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def specs_for(self, kind: str) -> tuple[FaultSpec, ...]:
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        return tuple(s for s in self.specs if s.kind == kind)

    def probability(self, kind: str, link_id: str | None = None) -> float:
        """Total per-event probability of ``kind`` (capped at 1)."""
        total = sum(
            s.probability
            for s in self.specs_for(kind)
            if link_id is None or s.applies_to(link_id)
        )
        return min(total, 1.0)

    @property
    def has_telemetry_faults(self) -> bool:
        return any(s.kind.startswith("telemetry.") for s in self.specs)

    def scaled(self, intensity: float) -> "FaultPlan":
        return FaultPlan(
            specs=tuple(s.scaled(intensity) for s in self.specs), seed=self.seed
        )

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "specs": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            specs=tuple(FaultSpec.from_dict(s) for s in data.get("specs", ())),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def standard(cls, intensity: float = 1.0, *, seed: int = 0) -> "FaultPlan":
        """The chaos harness's reference environment at ``intensity``.

        Intensity 1.0 is a rough "bad month, compressed": a couple of
        telemetry dropouts and freezes per link-day, a few percent of
        corrupted samples, and double-digit per-attempt hardware/solver
        failure odds — enough that retries and fallbacks all exercise.
        Intensity 0.0 degenerates to an all-zero plan (no faults fire).
        """
        base = (
            FaultSpec("telemetry.dropout", rate_per_day=0.5, duration_s=2 * 3600.0),
            FaultSpec("telemetry.stuck", rate_per_day=0.25, duration_s=3600.0),
            FaultSpec("telemetry.corrupt", probability=0.02, magnitude_db=3.0),
            FaultSpec(
                "telemetry.delay",
                rate_per_day=0.25,
                duration_s=2 * 3600.0,
                delay_samples=2,
            ),
            FaultSpec("bvt.failure", probability=0.2),
            FaultSpec("bvt.power_cycle", probability=0.1),
            FaultSpec("te.exception", probability=0.05),
        )
        return cls(specs=base, seed=seed).scaled(intensity)
