"""The chaos harness: sweep fault intensity, assert the invariants.

A chaos point runs the full closed loop (3-node line, synthesized SNR
traces with a mid-horizon dip, gravity demands) under
:meth:`FaultPlan.standard <repro.faults.spec.FaultPlan.standard>` at a
given intensity — **twice**, from identical initial state — and
reports both the degradation metrics and whether the two runs were
byte-identical.  :func:`chaos_verdicts` then checks the properties the
hardening claims:

1. **determinism** — every point's paired runs produce byte-identical
   metrics (fault injection is seed-keyed, never wall-clock-keyed);
2. **BER feasibility** — no round left any link configured above the
   capacity its decision-time SNR supports, no matter how hard the
   telemetry lied or the hardware refused;
3. **graceful degradation** — mean throughput decays monotonically-ish
   with intensity (a slack factor absorbs LP tie-breaking noise);
   faults must degrade service, never crash the loop or, worse,
   *improve* reported throughput by dropping accounting.

``repro chaos`` drives this over an intensity grid and exits non-zero
on any violation, making the suite CI-runnable.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

import numpy as np

from repro.seeds import component_rng

#: slack factor for the monotonic-degradation check: a higher-intensity
#: point may beat a lower one by at most this ratio (LP degeneracy and
#: dropout-masked accounting wiggle, not real improvement)
MONOTONIC_SLACK = 1.10


def _canonical(metrics: Mapping[str, Any]) -> str:
    return json.dumps(metrics, sort_keys=True, separators=(",", ":"))


def _chaos_inputs(days: float, seed: int) -> tuple[Any, dict[str, Any], list[Any]]:
    """The shared scenario of every chaos/crash point.

    Returns ``(topology, traces_by_link, demands)``: a 3-node line,
    synthesized SNR traces with a mid-horizon amplifier dip, gravity
    demands — all seed-keyed, so paired runs start from identical
    state.
    """
    from repro.net.demands import gravity_demands
    from repro.net.topologies import line_topology
    from repro.optics.impairments import AmplifierDegradation
    from repro.telemetry.timebase import Timebase
    from repro.telemetry.traces import NoiseModel, synthesize_cable_traces

    topology = line_topology(3)
    timebase = Timebase.from_duration(days=days)
    link_ids = [l.link_id for l in topology.real_links()]
    events = [
        AmplifierDegradation(0.4 * timebase.duration_s, 6 * 3600.0, 10.0)
    ]
    traces = synthesize_cable_traces(
        "chaos-cable",
        np.full(len(link_ids), 15.0),
        timebase,
        events,
        {},
        NoiseModel(sigma_db=0.08, wander_amplitude_db=0.0),
        component_rng(seed, "chaos.cable"),
    )
    traces_by_link = dict(zip(link_ids, traces))
    demands = gravity_demands(
        topology, 400.0, component_rng(seed, "chaos.demands")
    )
    return topology, traces_by_link, demands


def run_chaos_point(
    *,
    days: float = 1.0,
    intensity: float = 1.0,
    policy: str = "run",
    seed: int = 7,
    te_interval_h: float = 4.0,
    retries: int = 3,
) -> dict[str, Any]:
    """One intensity point: the paired-run replay plus its metrics.

    Intensity 0 builds **no plan at all** (``faults=None``), so the
    zero point of every sweep doubles as the no-fault regression
    anchor: it must match a plain replay bit for bit.
    """
    from repro.core.controller import DynamicCapacityController, RetryPolicy
    from repro.core.policies import crawl_policy, run_policy, walk_policy
    from repro.faults.inject import FaultInjector
    from repro.faults.spec import FaultPlan
    from repro.sim.replay import replay_controller

    policies = {"run": run_policy, "walk": walk_policy, "crawl": crawl_policy}
    if policy not in policies:
        raise ValueError(f"unknown policy {policy!r} (valid: {tuple(policies)})")

    topology, traces_by_link, demands = _chaos_inputs(days, seed)

    def one_run() -> dict[str, Any]:
        injector = (
            FaultInjector(FaultPlan.standard(intensity, seed=seed))
            if intensity > 0
            else None
        )
        controller = DynamicCapacityController(
            topology,
            policy=policies[policy](),
            seed=seed,
            retry=RetryPolicy(max_retries=retries) if retries > 0 else None,
            audit=True,
        )
        result = replay_controller(
            controller,
            traces_by_link,
            demands,
            te_interval_s=te_interval_h * 3600.0,
            faults=injector,
        )
        reports = result.reports
        return {
            "n_rounds": int(result.n_rounds),
            "mean_throughput_gbps": float(result.mean_throughput_gbps),
            "total_downtime_s": float(result.total_downtime_s),
            "n_retries": int(sum(r.n_retries for r in reports)),
            "retry_backoff_s": float(sum(r.retry_backoff_s for r in reports)),
            "n_te_fallbacks": int(sum(1 for r in reports if r.te_fallback)),
            "n_reconfig_failures": int(
                sum(len(r.reconfig_failed_links) for r in reports)
            ),
            "n_stale_link_rounds": int(
                sum(len(r.stale_links) for r in reports)
            ),
            "fault_capacity_loss_gbps": float(
                sum(r.fault_capacity_loss_gbps for r in reports)
            ),
            "n_ber_violations": int(
                sum(len(r.ber_violations) for r in reports)
            ),
            "fault_counts": dict(sorted(injector.counts.items()))
            if injector is not None
            else {},
        }

    first = one_run()
    second = one_run()
    return {
        "intensity": float(intensity),
        "policy": policy,
        "byte_identical": _canonical(first) == _canonical(second),
        **first,
    }


def run_chaos_sweep(
    intensities: Sequence[float],
    **point_kwargs: Any,
) -> list[dict[str, Any]]:
    """One :func:`run_chaos_point` per intensity, in the given order."""
    return [
        run_chaos_point(intensity=float(i), **point_kwargs) for i in intensities
    ]


def run_crash_point(
    *,
    crash_round: int,
    seam: str,
    journal_dir: str,
    days: float = 1.0,
    policy: str = "run",
    seed: int = 7,
    te_interval_h: float = 4.0,
) -> dict[str, Any]:
    """One crash-equivalence proof: crash, recover, compare.

    Three runs over identical inputs: a **reference** run (no journal,
    no faults) straight through; a **crashed** run journaling to
    ``journal_dir`` with a single ``controller.crash`` fault at
    ``(crash_round, seam)``, which must die mid-run; and a **resumed**
    run recovering that journal (no crash fault this time — a
    ``pre-commit`` crash would otherwise strike the same round
    forever).  The point passes when the resumed run's full per-round
    metric arrays are byte-identical to the reference's.
    """
    from repro.core.controller import DynamicCapacityController
    from repro.core.policies import crawl_policy, run_policy, walk_policy
    from repro.faults.spec import FaultPlan, FaultSpec
    from repro.recovery.journal import ControllerCrash
    from repro.sim.replay import ReplayResult, replay_controller

    policies = {"run": run_policy, "walk": walk_policy, "crawl": crawl_policy}
    if policy not in policies:
        raise ValueError(f"unknown policy {policy!r} (valid: {tuple(policies)})")

    topology, traces_by_link, demands = _chaos_inputs(days, seed)

    def fresh_controller() -> DynamicCapacityController:
        return DynamicCapacityController(
            topology, policy=policies[policy](), seed=seed, audit=True
        )

    def run(**kwargs: Any) -> ReplayResult:
        return replay_controller(
            fresh_controller(),
            traces_by_link,
            demands,
            te_interval_s=te_interval_h * 3600.0,
            **kwargs,
        )

    def canonical(result: ReplayResult) -> str:
        return _canonical(
            {
                "times_s": result.times_s.tolist(),
                "throughput_gbps": result.throughput_gbps.tolist(),
                "n_upgrades": result.n_upgrades.tolist(),
                "n_downgrades": result.n_downgrades.tolist(),
                "n_failed": result.n_failed.tolist(),
                "downtime_s": result.downtime_s.tolist(),
                "n_batches": [
                    r.n_reconfiguration_batches for r in result.reports
                ],
                "disrupted_gbps": [
                    r.traffic_disrupted_gbps for r in result.reports
                ],
            }
        )

    reference = run()
    crash_plan = FaultPlan(
        specs=(
            FaultSpec(
                "controller.crash", crash_round=crash_round, crash_seam=seam
            ),
        ),
        seed=seed,
    )
    crashed = False
    try:
        run(faults=crash_plan, journal_dir=journal_dir)
    except ControllerCrash:
        crashed = True
    resumed = run(journal_dir=journal_dir, resume=True)
    reference_canonical = canonical(reference)
    return {
        "crash_round": int(crash_round),
        "seam": seam,
        "policy": policy,
        "crashed": crashed,
        "n_rounds": int(resumed.n_rounds),
        "n_reference_rounds": int(reference.n_rounds),
        "mean_throughput_gbps": float(resumed.mean_throughput_gbps),
        "byte_identical": canonical(resumed) == reference_canonical,
        "canonical": reference_canonical,
    }


def run_crash_sweep(
    crash_rounds: Sequence[int],
    seams: Sequence[str],
    *,
    journal_root: str,
    **point_kwargs: Any,
) -> list[dict[str, Any]]:
    """One :func:`run_crash_point` per (round, seam), fresh journal each."""
    import os

    points = []
    for crash_round in crash_rounds:
        for seam in seams:
            journal_dir = os.path.join(
                journal_root, f"crash-r{crash_round}-{seam}"
            )
            points.append(
                run_crash_point(
                    crash_round=int(crash_round),
                    seam=seam,
                    journal_dir=journal_dir,
                    **point_kwargs,
                )
            )
    return points


def crash_verdicts(points: Sequence[Mapping[str, Any]]) -> list[str]:
    """Crash-equivalence violations (empty == every seam recovered)."""
    problems: list[str] = []
    for p in points:
        where = f"round {p['crash_round']}, seam {p['seam']}"
        if not p["crashed"]:
            problems.append(f"{where}: the crash fault never fired")
        if p["n_rounds"] != p["n_reference_rounds"]:
            problems.append(
                f"{where}: resumed run produced {p['n_rounds']} rounds, "
                f"reference {p['n_reference_rounds']}"
            )
        if not p["byte_identical"]:
            problems.append(
                f"{where}: recovered run is not byte-identical to the "
                "uninterrupted reference"
            )
    return problems


def chaos_verdicts(points: Sequence[Mapping[str, Any]]) -> list[str]:
    """Invariant violations over a sweep (empty == all invariants hold)."""
    problems: list[str] = []
    for p in points:
        if not p["byte_identical"]:
            problems.append(
                f"intensity {p['intensity']}: paired runs were not "
                "byte-identical (determinism broken)"
            )
        if p["n_ber_violations"]:
            problems.append(
                f"intensity {p['intensity']}: {p['n_ber_violations']} "
                "round(s) held a link above its BER-feasible capacity"
            )
    ordered = sorted(points, key=lambda p: p["intensity"])
    for lo, hi in zip(ordered, ordered[1:]):
        if hi["mean_throughput_gbps"] > lo["mean_throughput_gbps"] * MONOTONIC_SLACK:
            problems.append(
                f"throughput rose from {lo['mean_throughput_gbps']:.1f} Gbps "
                f"(intensity {lo['intensity']}) to "
                f"{hi['mean_throughput_gbps']:.1f} Gbps "
                f"(intensity {hi['intensity']}) — degradation is not "
                "monotonic within slack"
            )
    return problems
