"""Lightweight timing instrumentation for the hot paths.

The synthesis and TE layers are wrapped in named timers so benchmarks,
the CLI and CI can answer "where did the time go?" without a profiler.
Three primitives:

* :func:`timer` — a context manager that records one elapsed interval
  under a name (``with perf.timer("synthesis.summaries", workers=4):``);
* :func:`event` — a named counter for things that happen without a
  duration worth measuring (cache hits, cables skipped);
* :func:`collect` / :func:`write_bench` — aggregate everything recorded
  so far into a report dict, optionally persisted as ``BENCH.json`` so
  the perf trajectory is tracked PR-over-PR.

All state lives in a *current* :class:`PerfRegistry` — the process-wide
:data:`REGISTRY` by default.  Tests and benchmarks either call
:func:`reset` or, better, enter :func:`isolated`, which swaps in a fresh
registry for the enclosed block (per thread, so pool workers running in
the thread-fallback mode cannot bleed timers into each other).  The
sweep runner (:mod:`repro.experiments.runner`) wraps every run in
:func:`isolated` so back-to-back runs in one process each report their
own timings instead of accumulating into one global report.  The
overhead per record is one ``perf_counter`` pair and a dict update —
cheap enough to leave the instrumentation on unconditionally.
"""

from __future__ import annotations

import json
import math
import platform
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

SCHEMA_VERSION = 1


@dataclass
class TimerStat:
    """Aggregate of every interval recorded under one timer name."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0
    #: metadata of the most recent record (workers, cache state, ...)
    meta: dict[str, Any] = field(default_factory=dict)

    def add(self, elapsed_s: float, meta: dict[str, Any]) -> None:
        self.count += 1
        self.total_s += elapsed_s
        self.min_s = min(self.min_s, elapsed_s)
        self.max_s = max(self.max_s, elapsed_s)
        if meta:
            self.meta = dict(meta)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "meta": self.meta,
        }


class PerfRegistry:
    """Named timers and counters, aggregated in memory."""

    def __init__(self) -> None:
        self._timers: dict[str, TimerStat] = {}
        self._events: dict[str, int] = {}

    # -- recording --------------------------------------------------------

    @contextmanager
    def timer(self, name: str, **meta: Any) -> Iterator[None]:
        """Time the enclosed block and record it under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start, **meta)

    def record(self, name: str, elapsed_s: float, **meta: Any) -> None:
        """Record one already-measured interval."""
        if elapsed_s < 0:
            raise ValueError("elapsed time must be non-negative")
        self._timers.setdefault(name, TimerStat()).add(elapsed_s, meta)

    def event(self, name: str, count: int = 1) -> None:
        """Bump a named counter (cache hit, cable skipped, ...)."""
        self._events[name] = self._events.get(name, 0) + count

    # -- reading ----------------------------------------------------------

    def timer_stat(self, name: str) -> TimerStat | None:
        return self._timers.get(name)

    def event_count(self, name: str) -> int:
        return self._events.get(name, 0)

    def hit_rate(self, hit_name: str, miss_name: str) -> float:
        """Fraction of hits among ``hit_name`` + ``miss_name`` events.

        0.0 when neither counter has fired (no traffic, no claim).
        """
        hits = self.event_count(hit_name)
        total = hits + self.event_count(miss_name)
        return hits / total if total else 0.0

    def collect(self, extra: dict[str, Any] | None = None) -> dict[str, Any]:
        """Aggregate everything recorded so far into a report dict.

        The layout is the ``BENCH.json`` schema: stable keys, plain JSON
        types, timers keyed by name with count/total/mean/min/max.
        """
        report: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "generated_unix": time.time(),
            "host": {
                "platform": platform.platform(),
                "python": platform.python_version(),
            },
            "timers": {
                name: stat.as_dict() for name, stat in sorted(self._timers.items())
            },
            "events": dict(sorted(self._events.items())),
        }
        if extra:
            report["extra"] = dict(extra)
        return report

    def reset(self) -> None:
        self._timers.clear()
        self._events.clear()

    def write_bench(
        self,
        path: str | Path = "BENCH.json",
        *,
        extra: dict[str, Any] | None = None,
    ) -> Path:
        """Persist :meth:`collect` as machine-readable JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.collect(extra), indent=2) + "\n")
        return path


#: Process-wide default registry used by the library's instrumentation.
REGISTRY = PerfRegistry()

_isolation = threading.local()


def current() -> PerfRegistry:
    """The registry instrumentation records into right now.

    :data:`REGISTRY` unless the calling thread is inside
    :func:`isolated`, in which case the innermost isolated registry.
    """
    stack = getattr(_isolation, "stack", None)
    return stack[-1] if stack else REGISTRY


@contextmanager
def isolated(registry: PerfRegistry | None = None) -> Iterator[PerfRegistry]:
    """Route this thread's instrumentation into a fresh registry.

    Yields the registry so the caller can :meth:`~PerfRegistry.collect`
    its report afterwards; on exit the previous registry is restored
    untouched.  Nests, and is independent per thread.

    >>> with isolated() as reg:
    ...     record("isolated.work", 0.5)
    >>> reg.timer_stat("isolated.work").count
    1
    >>> timer_stat("isolated.work") is None  # the default registry
    True
    """
    reg = registry if registry is not None else PerfRegistry()
    stack = getattr(_isolation, "stack", None)
    if stack is None:
        stack = _isolation.stack = []
    stack.append(reg)
    try:
        yield reg
    finally:
        stack.pop()


def timer(name: str, **meta: Any):
    """Time the enclosed block on the current registry."""
    return current().timer(name, **meta)


def record(name: str, elapsed_s: float, **meta: Any) -> None:
    current().record(name, elapsed_s, **meta)


def event(name: str, count: int = 1) -> None:
    current().event(name, count)


def timer_stat(name: str) -> TimerStat | None:
    return current().timer_stat(name)


def event_count(name: str) -> int:
    return current().event_count(name)


def hit_rate(hit_name: str, miss_name: str) -> float:
    return current().hit_rate(hit_name, miss_name)


def collect(extra: dict[str, Any] | None = None) -> dict[str, Any]:
    return current().collect(extra)


def reset() -> None:
    current().reset()


def write_bench(
    path: str | Path = "BENCH.json", *, extra: dict[str, Any] | None = None
) -> Path:
    return current().write_bench(path, extra=extra)
