"""Lightweight timing instrumentation for the hot paths.

.. deprecated::
    ``repro.perf`` is now a back-compat shim over
    :mod:`repro.obs.metrics`: every timer lands in a
    :class:`~repro.obs.metrics.Summary` and every event in a
    :class:`~repro.obs.metrics.Counter` of the *current*
    :class:`~repro.obs.metrics.MetricsRegistry`.  The public API and
    the ``BENCH.json`` schema are unchanged; new instrumentation
    should use :mod:`repro.obs` directly (labels, gauges, histograms,
    cross-worker merging).

The synthesis and TE layers are wrapped in named timers so benchmarks,
the CLI and CI can answer "where did the time go?" without a profiler.
Three primitives:

* :func:`timer` — a context manager that records one elapsed interval
  under a name (``with perf.timer("synthesis.summaries", workers=4):``);
* :func:`event` — a named counter for things that happen without a
  duration worth measuring (cache hits, cables skipped);
* :func:`collect` / :func:`write_bench` — aggregate everything recorded
  so far into a report dict, optionally persisted as ``BENCH.json`` so
  the perf trajectory is tracked PR-over-PR.

All state lives in a *current* registry — the process-wide
:data:`REGISTRY` by default.  Tests and benchmarks either call
:func:`reset` or, better, enter :func:`isolated`, which swaps in a fresh
registry for the enclosed block (per thread, so pool workers running in
the thread-fallback mode cannot bleed timers into each other).  The
sweep runner (:mod:`repro.experiments.runner`) wraps every run in
:func:`isolated` so back-to-back runs in one process each report their
own timings instead of accumulating into one global report.  The
``generated_unix`` stamp honours ``SOURCE_DATE_EPOCH`` so CI can
byte-diff two reports from identical runs.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Iterator

from .obs import metrics as _metrics
from .obs.metrics import MetricsRegistry, Summary, timestamp_unix

SCHEMA_VERSION = 1

#: Back-compat alias: the ``BENCH.json`` timer aggregate now lives in
#: :mod:`repro.obs.metrics` (same fields, same ``as_dict`` layout).
TimerStat = Summary


class PerfRegistry:
    """Named timers and counters — a view over a :class:`MetricsRegistry`.

    Timers are recorded as unlabelled summaries, events as unlabelled
    counters, on :attr:`metrics`.  Anything else recorded on the same
    metrics registry (labelled counters from :mod:`repro.obs`
    instrumentation, for instance) also shows up in :meth:`collect`'s
    ``events`` section under its flat series name.
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # the canonical view current() hands out for this metrics registry
        self.metrics._perf_view = self  # type: ignore[attr-defined]

    # -- recording --------------------------------------------------------

    def timer(self, name: str, **meta: Any):
        """Time the enclosed block and record it under ``name``."""
        return _TimerContext(self, name, meta)

    def record(self, name: str, elapsed_s: float, **meta: Any) -> None:
        """Record one already-measured interval."""
        self.metrics.summary(name).add(elapsed_s, meta)

    def event(self, name: str, count: int = 1) -> None:
        """Bump a named counter (cache hit, cable skipped, ...)."""
        self.metrics.counter(name).inc(count)

    # -- reading ----------------------------------------------------------

    def timer_stat(self, name: str) -> TimerStat | None:
        return self.metrics.get_summary(name)

    def event_count(self, name: str) -> int:
        return int(self.metrics.counter_value(name))

    def hit_rate(self, hit_name: str, miss_name: str) -> float:
        """Fraction of hits among ``hit_name`` + ``miss_name`` events.

        0.0 when neither counter has fired (no traffic, no claim).
        """
        hits = self.event_count(hit_name)
        total = hits + self.event_count(miss_name)
        return hits / total if total else 0.0

    def collect(self, extra: dict[str, Any] | None = None) -> dict[str, Any]:
        """Aggregate everything recorded so far into a report dict.

        The layout is the ``BENCH.json`` schema: stable keys, plain JSON
        types, timers keyed by name with count/total/mean/min/max.
        Gauges and histograms (recordable only through
        :mod:`repro.obs`) appear as extra sections when present.
        """
        events: dict[str, Any] = {}
        for name, value in self.metrics.counters().items():
            events[name] = int(value) if value == int(value) else value
        report: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "generated_unix": timestamp_unix(),
            "host": {
                "platform": platform.platform(),
                "python": platform.python_version(),
            },
            "timers": {
                name: stat.as_dict()
                for name, stat in self.metrics.summaries().items()
            },
            "events": events,
        }
        gauges = self.metrics.gauges()
        if gauges:
            report["gauges"] = gauges
        histograms = self.metrics.histograms()
        if histograms:
            report["histograms"] = {
                name: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "inf_count": h.inf_count,
                    "total": h.total,
                    "n": h.n,
                }
                for name, h in histograms.items()
            }
        if extra:
            report["extra"] = dict(extra)
        return report

    def reset(self) -> None:
        self.metrics.reset()

    def write_bench(
        self,
        path: str | Path = "BENCH.json",
        *,
        extra: dict[str, Any] | None = None,
    ) -> Path:
        """Persist :meth:`collect` as machine-readable JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.collect(extra), indent=2) + "\n")
        return path


class _TimerContext:
    """Context manager measuring one interval (perf_counter pair)."""

    __slots__ = ("_registry", "_name", "_meta", "_start")

    def __init__(self, registry: PerfRegistry, name: str, meta: dict[str, Any]):
        self._registry = registry
        self._name = name
        self._meta = meta

    def __enter__(self) -> None:
        self._start = time.perf_counter()
        return None

    def __exit__(self, *exc: Any) -> None:
        self._registry.record(
            self._name, time.perf_counter() - self._start, **self._meta
        )
        return None


#: Process-wide default registry used by the library's instrumentation
#: — a view over :data:`repro.obs.metrics.REGISTRY`.
REGISTRY = PerfRegistry(metrics=_metrics.REGISTRY)


def current() -> PerfRegistry:
    """The registry instrumentation records into right now.

    :data:`REGISTRY` unless the calling thread is inside
    :func:`isolated` (or :func:`repro.obs.metrics.isolated`), in which
    case the view over the innermost isolated metrics registry.
    """
    metrics = _metrics.current()
    view = getattr(metrics, "_perf_view", None)
    if view is None:
        view = PerfRegistry(metrics=metrics)
    return view


class _IsolatedPerf:
    """``isolated()`` context: enters the metrics-level isolation."""

    def __init__(self, registry: PerfRegistry | None):
        self._registry = registry if registry is not None else PerfRegistry()
        self._inner = _metrics.isolated(self._registry.metrics)

    def __enter__(self) -> PerfRegistry:
        self._inner.__enter__()
        return self._registry

    def __exit__(self, *exc: Any) -> Any:
        return self._inner.__exit__(*exc)


def isolated(registry: PerfRegistry | None = None) -> Iterator[PerfRegistry]:
    """Route this thread's instrumentation into a fresh registry.

    Yields the registry so the caller can :meth:`~PerfRegistry.collect`
    its report afterwards; on exit the previous registry is restored
    untouched.  Nests, and is independent per thread.  Delegates to
    :func:`repro.obs.metrics.isolated`, so perf timers and
    :mod:`repro.obs` metrics recorded in the same block land in the
    same isolated registry.

    >>> with isolated() as reg:
    ...     record("isolated.work", 0.5)
    >>> reg.timer_stat("isolated.work").count
    1
    >>> timer_stat("isolated.work") is None  # the default registry
    True
    """
    return _IsolatedPerf(registry)


def timer(name: str, **meta: Any):
    """Time the enclosed block on the current registry."""
    return current().timer(name, **meta)


def record(name: str, elapsed_s: float, **meta: Any) -> None:
    current().record(name, elapsed_s, **meta)


def event(name: str, count: int = 1) -> None:
    current().event(name, count)


def timer_stat(name: str) -> TimerStat | None:
    return current().timer_stat(name)


def event_count(name: str) -> int:
    return current().event_count(name)


def hit_rate(hit_name: str, miss_name: str) -> float:
    return current().hit_rate(hit_name, miss_name)


def collect(extra: dict[str, Any] | None = None) -> dict[str, Any]:
    return current().collect(extra)


def reset() -> None:
    current().reset()


def write_bench(
    path: str | Path = "BENCH.json", *, extra: dict[str, Any] | None = None
) -> Path:
    return current().write_bench(path, extra=extra)
