"""``repro.state`` — the versioned network state every layer shares.

One authoritative, immutable picture of the network (topology +
per-link capacity / modulation / health / dark flags + BVT status)
with copy-on-write transitions, monotonic versions, typed deltas and a
ring buffer of recent snapshots:

* :class:`NetworkState` / :class:`LinkState` — the snapshot model
  (:mod:`repro.state.model`);
* :func:`diff` / :func:`apply_deltas` and the typed ``*Delta`` records
  (:mod:`repro.state.delta`);
* :class:`StateStore` — recent history, what-if forks, transition
  trace points (:mod:`repro.state.store`);
* :func:`structure_digest` / :func:`capacity_digest` /
  :func:`demand_digest` — the cache-key tuples
  (:mod:`repro.state.digest`);
* :func:`state_to_payload` / :func:`state_from_payload` and the
  topology payload pair — the bit-exact JSON snapshots the durable
  journal checkpoints (:mod:`repro.state.serialize`).

Layering: this package sits *below* the controller and the simulators
and imports neither (CI enforces the boundary).
"""

from repro.state.delta import (
    BvtDelta,
    CapacityDelta,
    DarkDelta,
    HealthDelta,
    ModulationDelta,
    StateDelta,
    apply_deltas,
    delta_counts,
    delta_from_payload,
    delta_payload,
    diff,
)
from repro.state.digest import (
    CapacityDigest,
    StructureDigest,
    capacity_digest,
    demand_digest,
    structure_digest,
)
from repro.state.model import MUTABLE_LINK_FIELDS, LinkState, NetworkState
from repro.state.serialize import (
    state_from_payload,
    state_to_payload,
    topology_from_payload,
    topology_to_payload,
)
from repro.state.store import StateStore

__all__ = [
    "BvtDelta",
    "CapacityDelta",
    "CapacityDigest",
    "DarkDelta",
    "HealthDelta",
    "LinkState",
    "ModulationDelta",
    "MUTABLE_LINK_FIELDS",
    "NetworkState",
    "StateDelta",
    "StateStore",
    "StructureDigest",
    "apply_deltas",
    "capacity_digest",
    "delta_counts",
    "delta_from_payload",
    "delta_payload",
    "demand_digest",
    "diff",
    "state_from_payload",
    "state_to_payload",
    "structure_digest",
    "topology_from_payload",
    "topology_to_payload",
]
