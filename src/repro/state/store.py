"""A ring buffer of recent :class:`~repro.state.model.NetworkState`s.

The :class:`StateStore` is one lineage's recent history: committing a
state keeps the last ``capacity`` snapshots for what-if forks and
post-mortem replay, records the typed deltas of recent transitions, and
publishes each transition as a ``state.transition`` point event on the
ambient tracer (:mod:`repro.obs` renders those into
``state_timeline.jsonl``).

Two stores with a shared ancestor are how fault injection models
observed-vs-truth divergence: the injector commits what the controller
*sees* to one lineage and what the network *is* to another, and the
per-version diff between them is the corruption the faults introduced.

Durability is delegated: :meth:`StateStore.attach_journal` hooks a
:class:`~repro.recovery.journal.StateJournal` (or anything with
``append_transition`` / ``iter_transitions``) so every commit's deltas
land in the write-ahead log, and :meth:`timeline` reads the *complete*
history back through it — which is what lets the in-memory transition
record be a bounded ring instead of growing without limit.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator

from repro.obs import trace as _trace
from repro.state.delta import StateDelta, delta_counts, delta_payload, diff
from repro.state.model import NetworkState


class StateStore:
    """Recent snapshots of one evolving state lineage.

    ``capacity`` bounds snapshot memory: the buffer keeps the newest
    snapshots and silently forgets the oldest, like the transition
    journal of a production controller.  ``transition_capacity``
    bounds the in-memory transition record the same way (``None`` =
    unbounded, the pre-journal behaviour); with a journal attached the
    evicted transitions remain durably recorded and :meth:`timeline`
    stays complete.
    """

    def __init__(
        self,
        base: NetworkState,
        *,
        capacity: int = 64,
        transition_capacity: int | None = 1024,
        name: str = "state",
    ):
        if capacity < 1:
            raise ValueError("store capacity must be >= 1")
        if transition_capacity is not None and transition_capacity < 1:
            raise ValueError("transition capacity must be >= 1 (or None)")
        self.name = name
        self._snapshots: deque[NetworkState] = deque(maxlen=capacity)
        self._snapshots.append(base)
        #: (version, parent_version, label, deltas) per commit — a ring
        #: of the most recent ``transition_capacity`` transitions
        self.transitions: deque[
            tuple[int, int | None, str, list[StateDelta]]
        ] = deque(maxlen=transition_capacity)
        #: durable write-ahead journal, when bound (see attach_journal)
        self._journal: Any | None = None

    # -- durability ----------------------------------------------------

    def attach_journal(self, journal: Any) -> None:
        """Mirror every future commit's deltas into ``journal``.

        ``journal`` needs ``append_transition(version, parent, label,
        deltas)`` (called synchronously inside :meth:`commit`, before
        the trace point — the WAL ordering guarantee) and
        ``iter_transitions()`` (the complete history for
        :meth:`timeline`).
        """
        self._journal = journal

    @property
    def journal(self) -> Any | None:
        return self._journal

    # -- committing ----------------------------------------------------

    def commit(self, state: NetworkState) -> list[StateDelta]:
        """Append a new state; returns the typed deltas vs the latest.

        Emits a ``state.transition`` point event on the ambient tracer
        carrying the version chain and a per-kind delta count, so a
        traced run gets a complete state timeline for free.
        """
        previous = self.latest
        if state.version <= previous.version:
            raise ValueError(
                f"non-monotonic commit: v{state.version} after "
                f"v{previous.version} in {self.name!r}"
            )
        deltas = diff(previous, state)
        if self._journal is not None:
            self._journal.append_transition(
                state.version, state.parent_version, state.label, deltas
            )
        self._snapshots.append(state)
        self.transitions.append(
            (state.version, state.parent_version, state.label, deltas)
        )
        counts = delta_counts(deltas)
        _trace.point(
            "state.transition",
            store=self.name,
            version=state.version,
            parent=state.parent_version,
            label=state.label,
            n_deltas=len(deltas),
            **{f"n_{kind}": n for kind, n in sorted(counts.items())},
        )
        return deltas

    # -- reading -------------------------------------------------------

    @property
    def latest(self) -> NetworkState:
        return self._snapshots[-1]

    @property
    def oldest(self) -> NetworkState:
        return self._snapshots[0]

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self) -> Iterator[NetworkState]:
        return iter(self._snapshots)

    def get(self, version: int) -> NetworkState:
        """The retained snapshot at ``version`` (KeyError if evicted)."""
        for state in self._snapshots:
            if state.version == version:
                return state
        raise KeyError(
            f"version {version} not retained in {self.name!r} "
            f"(oldest kept: v{self.oldest.version})"
        )

    def fork(self, *, label: str, version: int | None = None) -> NetworkState:
        """A what-if child of a retained snapshot (latest by default)."""
        base = self.latest if version is None else self.get(version)
        return base.fork(label=label)

    # -- timeline ------------------------------------------------------

    def timeline(self) -> list[dict[str, Any]]:
        """Every recorded transition as plain-JSON rows.

        The same schema :func:`repro.obs.export.state_timeline_jsonl`
        writes, for callers that hold the store rather than a tracer.
        With a journal attached the rows come from the durable log —
        the complete lineage, including transitions the in-memory ring
        has evicted; without one, from the ring.
        """
        if self._journal is not None:
            return [
                {
                    "store": self.name,
                    "version": row["version"],
                    "parent": row["parent"],
                    "label": row["label"],
                    "deltas": list(row["deltas"]),
                }
                for row in self._journal.iter_transitions()
            ]
        return [
            {
                "store": self.name,
                "version": version,
                "parent": parent,
                "label": label,
                "deltas": [delta_payload(d) for d in deltas],
            }
            for version, parent, label, deltas in self.transitions
        ]
