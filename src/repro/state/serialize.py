"""Plain-JSON snapshots of topologies and :class:`NetworkState`s.

The durable journal (:mod:`repro.recovery`) checkpoints a full
``NetworkState`` every K commits and replays deltas on top of it.  For
that to reproduce the in-memory state *bit for bit*, serialization must
preserve two things the obvious ``dict``-dump would lose:

* **order.**  Link iteration order determines LP variable layout and
  therefore degenerate-optimum tie-breaks; nodes and links are written
  in their topology insertion order and read back with ``add_node`` /
  ``add_link`` in the same order, so ``_links`` / ``_out`` / ``_in``
  come back identical.
* **floats.**  Values go through :mod:`json`'s shortest-repr float
  encoding, which round-trips every finite double exactly; NaN (a
  legitimate mid-fault ``snr_db``) survives as the ``NaN`` literal.

Nothing here timestamps anything: payloads are pure functions of the
state, so two identical runs journal byte-identical checkpoints.
"""

from __future__ import annotations

import itertools
from dataclasses import fields
from typing import Any, Mapping

from repro.net.topology import Link, Topology
from repro.state.model import LinkState, NetworkState

_LINK_FIELDS = tuple(f.name for f in fields(Link))
_LINK_STATE_FIELDS = tuple(f.name for f in fields(LinkState))


def topology_to_payload(topology: Topology) -> dict[str, Any]:
    """One topology as a plain-JSON dict, insertion order preserved."""
    return {
        "name": topology.name,
        # _out is keyed by node in insertion order (a dict, not the
        # sorted `nodes` property) — re-adding in this order rebuilds
        # the adjacency structures identically
        "nodes": list(topology._out),
        "links": [
            {name: getattr(link, name) for name in _LINK_FIELDS}
            for link in topology.links
        ],
    }


def topology_from_payload(payload: Mapping[str, Any]) -> Topology:
    """The inverse of :func:`topology_to_payload`."""
    out = Topology(payload["name"])
    for node in payload["nodes"]:
        out.add_node(node)
    for link in payload["links"]:
        fields_ = dict(link)
        link_id = fields_.pop("link_id")
        src = fields_.pop("src")
        dst = fields_.pop("dst")
        capacity = fields_.pop("capacity_gbps")
        out.add_link(src, dst, capacity, link_id=link_id, **fields_)
    # future auto-generated ids must not collide with loaded ones
    out._id_counter = itertools.count(len(payload["links"]))
    return out


def state_to_payload(state: NetworkState) -> dict[str, Any]:
    """One :class:`NetworkState` as a plain-JSON dict."""
    return {
        "topology": topology_to_payload(state.base),
        "version": state.version,
        "parent_version": state.parent_version,
        "label": state.label,
        "links": [
            {name: getattr(link, name) for name in _LINK_STATE_FIELDS}
            for link in state.links.values()
        ],
    }


def state_from_payload(
    payload: Mapping[str, Any], *, base: Topology | None = None
) -> NetworkState:
    """The inverse of :func:`state_to_payload`.

    Pass ``base`` to re-root the state on an existing topology object
    (the controller resumes against the physical topology it was
    constructed with); ``None`` rebuilds the topology from the payload.
    """
    topology = (
        base if base is not None else topology_from_payload(payload["topology"])
    )
    links = {
        link["link_id"]: LinkState(**link) for link in payload["links"]
    }
    return NetworkState(
        topology,
        links,
        version=payload["version"],
        parent_version=payload["parent_version"],
        label=payload["label"],
    )
