"""Typed deltas between two :class:`~repro.state.model.NetworkState`s.

:func:`diff` decomposes a transition into the smallest vocabulary the
control loop actually speaks:

* :class:`DarkDelta` — a link crossed the dark boundary (withdrawn
  from, or restored to, the routable topology);
* :class:`CapacityDelta` — a live link's usable rate changed (a flap,
  a downgrade, an upgrade);
* :class:`ModulationDelta` — the modulation format changed;
* :class:`BvtDelta` — the BVT hardware's reported line rate changed;
* :class:`HealthDelta` — anything else the controller tracks per link
  (SNR readings, staleness counters, configured rate, headroom,
  penalty), carried as an explicit field name.

:func:`apply_deltas` replays a delta list onto the old state and
reproduces the new one bit-for-bit (the round-trip the test suite
pins), which is what makes deltas safe to ship across a process
boundary or into ``state_timeline.jsonl`` instead of whole snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Union

from repro.state.model import MUTABLE_LINK_FIELDS, NetworkState

#: LinkState fields that get their own delta type (the rest ride
#: :class:`HealthDelta`)
_CAPACITY_FIELD = "capacity_gbps"
_MODULATION_FIELD = "modulation"
_BVT_FIELD = "bvt_gbps"
_HEALTH_FIELDS = tuple(
    sorted(
        MUTABLE_LINK_FIELDS
        - {_CAPACITY_FIELD, _MODULATION_FIELD, _BVT_FIELD}
    )
)


@dataclass(frozen=True)
class CapacityDelta:
    """A live link's usable capacity changed."""

    link_id: str
    old_gbps: float
    new_gbps: float


@dataclass(frozen=True)
class DarkDelta:
    """A link crossed the dark boundary.

    ``dark=True`` withdraws the link (new capacity 0); ``dark=False``
    relights it at ``relit_gbps``.
    """

    link_id: str
    dark: bool
    relit_gbps: float = 0.0


@dataclass(frozen=True)
class ModulationDelta:
    """The link's modulation format changed."""

    link_id: str
    old: str | None
    new: str | None


@dataclass(frozen=True)
class BvtDelta:
    """The BVT hardware's reported line rate changed."""

    link_id: str
    old_gbps: float | None
    new_gbps: float | None


@dataclass(frozen=True)
class HealthDelta:
    """Any other tracked per-link field changed (named explicitly)."""

    link_id: str
    field: str
    old: Any
    new: Any


StateDelta = Union[
    CapacityDelta, DarkDelta, ModulationDelta, BvtDelta, HealthDelta
]


def _same(a: Any, b: Any) -> bool:
    """Value equality that treats two NaNs as equal.

    Telemetry fields (``snr_db``) legitimately hold NaN mid-fault;
    without this a NaN -> NaN "transition" would emit a delta on every
    diff forever.
    """
    if a is b:
        return True
    if isinstance(a, float) and isinstance(b, float) and a != a and b != b:
        return True
    return a == b


def diff(old: NetworkState, new: NetworkState) -> list[StateDelta]:
    """The typed deltas that turn ``old`` into ``new``.

    Both states must track the same link set (one lineage: links never
    appear or vanish, they go dark).  Deltas come out in the states'
    link order, fields within a link in a fixed order (dark/capacity,
    then modulation, then BVT, then health fields alphabetically).
    """
    if old.links.keys() != new.links.keys():
        missing = old.links.keys() ^ new.links.keys()
        raise ValueError(
            f"states track different links (symmetric diff {sorted(missing)}); "
            "diff only spans one lineage"
        )
    deltas: list[StateDelta] = []
    for link_id, before in old.links.items():
        after = new.links[link_id]
        if after is before:
            continue  # structurally shared: untouched by every transition
        if before.dark != after.dark:
            deltas.append(
                DarkDelta(
                    link_id,
                    dark=after.dark,
                    relit_gbps=0.0 if after.dark else after.capacity_gbps,
                )
            )
        elif not _same(before.capacity_gbps, after.capacity_gbps):
            deltas.append(
                CapacityDelta(link_id, before.capacity_gbps, after.capacity_gbps)
            )
        if not _same(before.modulation, after.modulation):
            deltas.append(
                ModulationDelta(link_id, before.modulation, after.modulation)
            )
        if not _same(before.bvt_gbps, after.bvt_gbps):
            deltas.append(BvtDelta(link_id, before.bvt_gbps, after.bvt_gbps))
        for field_name in _HEALTH_FIELDS:
            b, a = getattr(before, field_name), getattr(after, field_name)
            if not _same(b, a):
                deltas.append(HealthDelta(link_id, field_name, b, a))
    return deltas


def apply_deltas(
    base: NetworkState,
    deltas: list[StateDelta],
    *,
    label: str,
    version: int | None = None,
) -> NetworkState:
    """Replay ``deltas`` onto ``base`` as one transition.

    With ``version`` left at its default the result is a normal child
    (``base.version + 1``); pass the target's version to reproduce a
    diffed state bit-for-bit.
    """
    updates: dict[str, dict[str, Any]] = {}
    for delta in deltas:
        changes = updates.setdefault(delta.link_id, {})
        if isinstance(delta, DarkDelta):
            changes[_CAPACITY_FIELD] = 0.0 if delta.dark else delta.relit_gbps
        elif isinstance(delta, CapacityDelta):
            changes[_CAPACITY_FIELD] = delta.new_gbps
        elif isinstance(delta, ModulationDelta):
            changes[_MODULATION_FIELD] = delta.new
        elif isinstance(delta, BvtDelta):
            changes[_BVT_FIELD] = delta.new_gbps
        elif isinstance(delta, HealthDelta):
            changes[delta.field] = delta.new
        else:  # pragma: no cover - exhaustive over StateDelta
            raise TypeError(f"unknown delta {delta!r}")
    out = base.evolve(updates, label=label)
    if version is not None:
        out.version = version
        out.parent_version = base.version
    return out


def delta_counts(deltas: list[StateDelta]) -> dict[str, int]:
    """How many deltas of each kind — the timeline's compact summary."""
    counts: dict[str, int] = {}
    for delta in deltas:
        kind = type(delta).__name__.removesuffix("Delta").lower()
        counts[kind] = counts.get(kind, 0) + 1
    return counts


def delta_payload(delta: StateDelta) -> dict[str, Any]:
    """One delta as a plain-JSON dict (for ``state_timeline.jsonl``)."""
    kind = type(delta).__name__.removesuffix("Delta").lower()
    payload: dict[str, Any] = {"kind": kind, "link_id": delta.link_id}
    for name, value in vars(delta).items():
        if name != "link_id":
            payload[name] = value
    return payload


_DELTA_TYPES: dict[str, type] = {
    "capacity": CapacityDelta,
    "dark": DarkDelta,
    "modulation": ModulationDelta,
    "bvt": BvtDelta,
    "health": HealthDelta,
}


def delta_from_payload(payload: Mapping[str, Any]) -> StateDelta:
    """The inverse of :func:`delta_payload`.

    Floats survive the JSON round trip bit-for-bit (shortest-repr
    serialization, NaN included), so a journaled delta replays through
    :func:`apply_deltas` exactly like the in-memory original.
    """
    fields = dict(payload)
    kind = fields.pop("kind", None)
    cls = _DELTA_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown delta kind {kind!r} (valid: {sorted(_DELTA_TYPES)})")
    return cls(**fields)
