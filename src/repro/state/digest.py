"""Canonical digests of network structure and numbers.

One authoritative definition of "what makes two networks the same",
shared by every cache and every state object:

* :func:`structure_digest` — the *shape*: node set plus link wiring in
  insertion order (link order is the LP's variable layout, so it is
  part of the structure).
* :func:`capacity_digest` — the per-round *numbers*: capacities and
  penalties in link order.  Two topologies with equal structure and
  capacity digests assemble value-identical LPs.
* :func:`demand_digest` — the traffic matrix, endpoint/volume/priority
  in list order.

The digests are plain tuples, not hashes: keying caches on values
instead of hash codes makes collisions impossible and invalidation
exact — any link appearing, disappearing or changing endpoints changes
the structure digest; any capacity/penalty change changes the capacity
digest.  :class:`~repro.state.model.NetworkState` exposes the same
tuples as :attr:`~repro.state.model.NetworkState.structure_id` and
:attr:`~repro.state.model.NetworkState.capacity_digest`, computed from
its own link states, so a state and the topology it materializes always
agree.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.net.demands import Demand
from repro.net.topology import Topology

#: the structure digest: (sorted node tuple, ((link_id, src, dst), ...))
StructureDigest = tuple
#: the numeric digest: ((capacity, ...), (penalty, ...)) in link order
CapacityDigest = tuple


def structure_digest(topology: Topology) -> StructureDigest:
    """The wiring that determines an LP's shape, in insertion order."""
    return (
        topology.nodes,
        tuple((l.link_id, l.src, l.dst) for l in topology.links),
    )


def capacity_digest(topology: Topology) -> CapacityDigest:
    """The per-round numbers: capacities and penalties in link order."""
    return (
        tuple(l.capacity_gbps for l in topology.links),
        tuple(l.penalty for l in topology.links),
    )


def demand_digest(demands: Sequence[Demand]) -> Hashable:
    """The traffic matrix as a hashable tuple, in list order."""
    return tuple((d.src, d.dst, d.volume_gbps, d.priority) for d in demands)
