"""The versioned, immutable network state every layer shares.

The paper's control loop — SNR telemetry drives capacity
reconfiguration drives TE on the augmented graph (§2–§4) — used to be
spread over five layers that each kept a private copy of "what the
network looks like right now".  :class:`NetworkState` is the one
authoritative picture:

* **immutable + structurally shared.**  A state never changes; a
  transition builds a new state via :meth:`NetworkState.evolve`, which
  shallow-copies the link table and shares every untouched
  :class:`LinkState` object with its parent.  Holding a state is
  therefore always safe (what-if forks, post-mortems) and a transition
  is O(links changed), not O(network).
* **versioned.**  Every transition increments a monotonic ``version``
  and records the parent, so a lineage is an auditable chain and two
  lineages (observed vs fault ground truth) can evolve side by side
  from a shared ancestor.
* **digest-keyed.**  :attr:`NetworkState.structure_id` and
  :attr:`NetworkState.capacity_digest` are the exact tuples the
  incremental-TE cache keys on (:mod:`repro.state.digest`), so cache
  invalidation is a by-product of state identity instead of
  hand-assembled per call site.

Dark links stay *in* the state with ``capacity_gbps == 0`` (a
:class:`~repro.net.topology.Link` must have positive capacity, so a
dark link has no Link — but the controller still needs its configured
rate, last-good SNR and staleness).  :meth:`NetworkState.to_topology`
materializes the live subgraph through ``Topology.copy`` +
``remove_link``/``replace_link`` — the same primitives
:func:`repro.net.srlg.fail_cable` and ``degrade_cable`` use — so link
iteration order, and hence LP variable layout, is preserved exactly.

Layering contract: this package sits below the controller and the
simulators and must import neither (CI enforces it).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from functools import cached_property
from typing import Any, Iterator, Mapping, Sequence

from repro.net.topology import Link, Topology
from repro.state.digest import CapacityDigest, StructureDigest

#: LinkState fields :meth:`NetworkState.evolve` accepts in an update
MUTABLE_LINK_FIELDS = frozenset(
    {
        "capacity_gbps",
        "configured_gbps",
        "headroom_gbps",
        "penalty",
        "modulation",
        "snr_db",
        "last_good_snr_db",
        "stale_rounds",
        "bvt_gbps",
    }
)


@dataclass(frozen=True)
class LinkState:
    """Everything the control loop knows about one directed link.

    Attributes:
        link_id / src / dst: identity (immutable across transitions).
        capacity_gbps: usable capacity right now; ``0`` means the link
            is dark (withdrawn from TE but still tracked).
        configured_gbps: the rate the BVT is configured for — what the
            link comes back at when it relights.
        headroom_gbps / penalty / weight: the TE-facing ``U`` and ``P``
            knobs plus the routing weight, mirroring
            :class:`~repro.net.topology.Link`.
        is_fake / shadow_of: augmentation bookkeeping for states
            snapshotted from solve topologies.
        modulation: name of the current modulation format, if known.
        snr_db: most recent telemetry reading (may be NaN mid-fault).
        last_good_snr_db: last finite reading, for stale-hold screening.
        stale_rounds: consecutive rounds of unusable telemetry.
        bvt_gbps: the BVT hardware's reported line rate, if attached.
    """

    link_id: str
    src: str
    dst: str
    capacity_gbps: float
    configured_gbps: float
    headroom_gbps: float = 0.0
    penalty: float = 0.0
    weight: float = 1.0
    is_fake: bool = False
    shadow_of: str | None = None
    modulation: str | None = None
    snr_db: float | None = None
    last_good_snr_db: float | None = None
    stale_rounds: int = 0
    bvt_gbps: float | None = None

    @property
    def dark(self) -> bool:
        """True when the link is withdrawn from the routable topology."""
        return self.capacity_gbps <= 0

    @classmethod
    def from_link(cls, link: Link) -> "LinkState":
        """Seed a link's state from its topology record."""
        return cls(
            link_id=link.link_id,
            src=link.src,
            dst=link.dst,
            capacity_gbps=link.capacity_gbps,
            configured_gbps=link.capacity_gbps,
            headroom_gbps=link.headroom_gbps,
            penalty=link.penalty,
            weight=link.weight,
            is_fake=link.is_fake,
            shadow_of=link.shadow_of,
        )


_LINK_STATE_FIELDS = tuple(f.name for f in fields(LinkState))


class NetworkState:
    """One immutable snapshot of the network, with copy-on-write evolution.

    Build the initial state with :meth:`from_topology` (physical view:
    real links only) or :meth:`snapshot` (verbatim view of any
    topology, fake links included — what the TE cache keys on).  Every
    subsequent state comes from :meth:`evolve` / :meth:`darken` /
    :meth:`flap` / :meth:`fork` on an existing one.
    """

    __slots__ = (
        "base",
        "links",
        "version",
        "parent_version",
        "label",
        "__dict__",
    )

    def __init__(
        self,
        base: Topology,
        links: Mapping[str, LinkState],
        *,
        version: int = 0,
        parent_version: int | None = None,
        label: str = "init",
    ):
        #: the reference topology transitions are materialized against
        self.base = base
        #: link id -> LinkState, in the base topology's link order
        self.links = dict(links)
        self.version = version
        self.parent_version = parent_version
        self.label = label

    # -- construction --------------------------------------------------

    @classmethod
    def from_topology(
        cls, topology: Topology, *, label: str = "init"
    ) -> "NetworkState":
        """The physical view: every real link, seeded from the topology."""
        return cls(
            topology,
            {l.link_id: LinkState.from_link(l) for l in topology.real_links()},
            label=label,
        )

    @classmethod
    def snapshot(
        cls, topology: Topology, *, label: str = "snapshot"
    ) -> "NetworkState":
        """A verbatim view of ``topology``, fake links included.

        Used to key TE solves: the augmented solve graph's structure
        and numbers become this state's digests.
        """
        return cls(
            topology,
            {l.link_id: LinkState.from_link(l) for l in topology.links},
            label=label,
        )

    # -- transitions ---------------------------------------------------

    def evolve(
        self,
        updates: Mapping[str, Mapping[str, Any]],
        *,
        label: str,
    ) -> "NetworkState":
        """A child state with per-link field updates applied.

        ``updates`` maps link ids to ``{field: value}`` dicts; only
        :data:`MUTABLE_LINK_FIELDS` may appear (identity and wiring
        are fixed for a lineage).  Untouched links are shared with the
        parent; an unknown link id is an error.
        """
        links = dict(self.links)
        for link_id, changes in updates.items():
            try:
                current = links[link_id]
            except KeyError:
                raise KeyError(
                    f"state v{self.version} has no link {link_id!r}"
                ) from None
            bad = set(changes) - MUTABLE_LINK_FIELDS
            if bad:
                raise ValueError(
                    f"immutable or unknown LinkState fields {sorted(bad)}"
                )
            links[link_id] = replace(current, **changes)
        return NetworkState(
            self.base,
            links,
            version=self.version + 1,
            parent_version=self.version,
            label=label,
        )

    def darken(
        self, link_ids: Sequence[str], *, label: str
    ) -> "NetworkState":
        """Withdraw links (capacity -> 0); unknown ids skip silently.

        The state-level :func:`~repro.net.srlg.fail_cable`: skipping
        missing links lets cascading scenarios compose.
        """
        updates = {
            link_id: {"capacity_gbps": 0.0}
            for link_id in link_ids
            if link_id in self.links
        }
        return self.evolve(updates, label=label)

    def flap(
        self, link_ids: Sequence[str], floor_gbps: float, *, label: str
    ) -> "NetworkState":
        """Cap links at ``floor_gbps`` with no headroom; unknowns skip.

        The state-level :func:`~repro.net.srlg.degrade_cable`: an SNR
        dip that leaves some rate feasible degrades the group instead
        of killing it.
        """
        if floor_gbps <= 0:
            raise ValueError("use darken for total loss")
        updates = {}
        for link_id in link_ids:
            current = self.links.get(link_id)
            if current is not None:
                updates[link_id] = {
                    "capacity_gbps": min(floor_gbps, current.capacity_gbps),
                    "headroom_gbps": 0.0,
                }
        return self.evolve(updates, label=label)

    def fork(self, *, label: str) -> "NetworkState":
        """A zero-change child: the root of a what-if lineage."""
        return self.evolve({}, label=label)

    # -- queries -------------------------------------------------------

    def __iter__(self) -> Iterator[LinkState]:
        return iter(self.links.values())

    def __contains__(self, link_id: str) -> bool:
        return link_id in self.links

    def __len__(self) -> int:
        return len(self.links)

    def link(self, link_id: str) -> LinkState:
        try:
            return self.links[link_id]
        except KeyError:
            raise KeyError(
                f"state v{self.version} has no link {link_id!r}"
            ) from None

    def capacity_of(self, link_id: str, default: float = 0.0) -> float:
        """Current capacity of a link, ``default`` when untracked."""
        state = self.links.get(link_id)
        return state.capacity_gbps if state is not None else default

    def live_links(self) -> list[LinkState]:
        return [s for s in self.links.values() if not s.dark]

    def dark_links(self) -> list[LinkState]:
        return [s for s in self.links.values() if s.dark]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NetworkState):
            return NotImplemented
        return (
            self.version == other.version
            and self.parent_version == other.parent_version
            and self.label == other.label
            and self.links == other.links
        )

    def __repr__(self) -> str:
        dark = sum(1 for s in self.links.values() if s.dark)
        return (
            f"NetworkState(v{self.version}, {self.label!r}, "
            f"links={len(self.links)}, dark={dark})"
        )

    # -- digests -------------------------------------------------------

    @cached_property
    def structure_id(self) -> StructureDigest:
        """The live subgraph's wiring — identical to
        :func:`repro.state.digest.structure_digest` of
        :meth:`to_topology`'s result (node set included: removing a
        link never removes its nodes)."""
        return (
            self.base.nodes,
            tuple(
                (s.link_id, s.src, s.dst)
                for s in self.links.values()
                if not s.dark
            ),
        )

    @cached_property
    def capacity_digest(self) -> CapacityDigest:
        """The live subgraph's numbers — identical to
        :func:`repro.state.digest.capacity_digest` of
        :meth:`to_topology`'s result."""
        live = [s for s in self.links.values() if not s.dark]
        return (
            tuple(s.capacity_gbps for s in live),
            tuple(s.penalty for s in live),
        )

    # -- materialization -----------------------------------------------

    def to_topology(self, name: str | None = None) -> Topology:
        """The live subgraph as a :class:`Topology`.

        Implemented with ``Topology.copy`` + ``remove_link`` +
        ``replace_link`` — the exact primitives the SRLG helpers use —
        so ``_links`` / ``_out`` / ``_in`` ordering matches a topology
        built by incremental edits, keeping LP assembly order (and
        therefore degenerate-optimum tie-breaks) byte-stable.
        """
        out = self.base.copy(name)
        for link_id in list(out._links):
            state = self.links.get(link_id)
            if state is None or state.dark:
                out.remove_link(link_id)
                continue
            link = out.link(link_id)
            changes: dict[str, Any] = {}
            if state.capacity_gbps != link.capacity_gbps:
                changes["capacity_gbps"] = state.capacity_gbps
            if state.headroom_gbps != link.headroom_gbps:
                changes["headroom_gbps"] = state.headroom_gbps
            if state.penalty != link.penalty:
                changes["penalty"] = state.penalty
            if state.weight != link.weight:
                changes["weight"] = state.weight
            if changes:
                out.replace_link(link_id, **changes)
        return out
