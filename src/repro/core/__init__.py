"""The paper's contribution: the graph abstraction for dynamic capacities.

* :mod:`~repro.core.penalties` — penalty functions for fake links
  (Section 4.2: "we suggest using the current link traffic as a penalty
  function, but the TE operator can set the penalty values arbitrarily");
* :mod:`~repro.core.augmentation` — Algorithm 1: G -> G' with fake
  parallel links per upgradable wavelength, and fake-link removal when
  SNR drops;
* :mod:`~repro.core.gadgets` — the Figure-8 construction that keeps a
  single unsplittable path at the upgraded rate;
* :mod:`~repro.core.translation` — step 3 of the Theorem-1 procedure:
  the TE output on G' read back as capacity-change decisions plus flow
  paths on the real topology;
* :mod:`~repro.core.theorem` — the executable Theorem-1 equivalence
  check (min-cost max-flow on G' == max-flow on G at full capacity);
* :mod:`~repro.core.policies` — the run/walk/crawl adaptation spectrum;
* :mod:`~repro.core.controller` — the closed loop: telemetry -> augment
  -> unmodified TE -> translate -> BVT reconfiguration.
"""

from repro.core.penalties import (
    ConstantPenalty,
    PenaltyPolicy,
    PriorityWeightedPenalty,
    TrafficDisruptionPenalty,
    ZeroPenalty,
)
from repro.core.augmentation import (
    AugmentedTopology,
    augment_topology,
    drop_infeasible_fake_links,
)
from repro.core.gadgets import apply_unsplittable_gadget
from repro.core.translation import LinkUpgrade, TranslationResult, translate
from repro.core.theorem import Theorem1Report, check_theorem1
from repro.core.policies import AdaptationPolicy, crawl_policy, run_policy, walk_policy
from repro.core.controller import (
    ControllerReport,
    DynamicCapacityController,
)
from repro.core.updates import (
    DrainPlan,
    MigrationStage,
    drain_plan,
    max_stage_churn_gbps,
    migration_stages,
)
from repro.core.scheduler import (
    ReconfigurationBatch,
    ReconfigurationSchedule,
    schedule_reconfigurations,
)
from repro.core.capacity_planner import (
    ExhaustionForecast,
    deferral_quarters,
    forecast_exhaustion,
)

__all__ = [
    "ConstantPenalty",
    "PenaltyPolicy",
    "PriorityWeightedPenalty",
    "TrafficDisruptionPenalty",
    "ZeroPenalty",
    "AugmentedTopology",
    "augment_topology",
    "drop_infeasible_fake_links",
    "apply_unsplittable_gadget",
    "LinkUpgrade",
    "TranslationResult",
    "translate",
    "Theorem1Report",
    "check_theorem1",
    "AdaptationPolicy",
    "crawl_policy",
    "run_policy",
    "walk_policy",
    "ControllerReport",
    "DynamicCapacityController",
    "DrainPlan",
    "MigrationStage",
    "drain_plan",
    "max_stage_churn_gbps",
    "migration_stages",
    "ReconfigurationBatch",
    "ReconfigurationSchedule",
    "schedule_reconfigurations",
    "ExhaustionForecast",
    "deferral_quarters",
    "forecast_exhaustion",
]
