"""Reading the TE output on G' back into the physical world.

Step 3 of the paper's Theorem-1 procedure: "directly translate the
output ... into (a) decisions about which link capacities should be
modified; and (b) the flow-paths of the current traffic demands."

Flow on a fake link means its physical twin must be upgraded by at
least that much; the modulation ladder rounds the requirement up to the
next rung.  The translated solution merges each fake link's flow into
its twin and lives on the *upgraded* physical topology, so all the
usual solution invariants (capacity, conservation) can be re-audited
after translation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.augmentation import AugmentedTopology
from repro.net.topology import Topology
from repro.optics.modulation import ModulationTable
from repro.te.solution import EPSILON, FlowAssignment, TeSolution


@dataclass(frozen=True)
class LinkUpgrade:
    """One capacity-change decision."""

    link_id: str
    old_capacity_gbps: float
    new_capacity_gbps: float
    #: flow the TE put on the fake twin (why the upgrade is needed)
    headroom_used_gbps: float
    #: traffic currently riding the link: what a non-hitless
    #: reconfiguration would disturb
    disrupted_traffic_gbps: float

    @property
    def gain_gbps(self) -> float:
        return self.new_capacity_gbps - self.old_capacity_gbps


@dataclass(frozen=True)
class TranslationResult:
    """Upgrades plus the flow assignment on the upgraded physical graph."""

    upgrades: tuple[LinkUpgrade, ...]
    solution: TeSolution

    @property
    def upgraded_topology(self) -> Topology:
        return self.solution.topology

    @property
    def total_gain_gbps(self) -> float:
        return sum(u.gain_gbps for u in self.upgrades)

    @property
    def total_disrupted_gbps(self) -> float:
        return sum(u.disrupted_traffic_gbps for u in self.upgrades)


def translate(
    augmented: AugmentedTopology,
    solution: TeSolution,
    *,
    table: ModulationTable | None = None,
    physical: Topology | None = None,
) -> TranslationResult:
    """Translate a TE solution on G' into upgrades + physical flows.

    Args:
        augmented: the Algorithm-1 output the solution was computed on.
        solution: TE output over ``augmented.topology``.
        table: modulation ladder; when given, upgraded capacities are
            rounded *up* to the next rung (hardware cannot do 173 Gbps).
        physical: the original topology G; defaults to reconstructing it
            from the augmented graph by dropping fake links.

    Raises :class:`ValueError` if the solution was computed on a
    different topology than ``augmented``.
    """
    if solution.topology is not augmented.topology and {
        l.link_id for l in solution.topology.links
    } != {l.link_id for l in augmented.topology.links}:
        raise ValueError("solution does not belong to this augmented topology")

    # 1. how much headroom did the TE consume per physical link?
    headroom_used: dict[str, float] = {}
    for fake_id, real_id in augmented.fake_to_real.items():
        used = solution.link_flow(fake_id)
        if used > EPSILON:
            headroom_used[real_id] = headroom_used.get(real_id, 0.0) + used

    # 2. build the upgraded physical topology
    base = physical if physical is not None else _strip_fakes(augmented.topology)
    upgraded = base.copy(f"{base.name}-upgraded")
    upgrades = []
    for real_id, used in sorted(headroom_used.items()):
        link = upgraded.link(real_id)
        needed = link.capacity_gbps + used
        new_capacity = _round_up_to_rung(needed, link, table)
        upgraded.replace_link(real_id, capacity_gbps=new_capacity, headroom_gbps=0.0)
        upgrades.append(
            LinkUpgrade(
                link_id=real_id,
                old_capacity_gbps=link.capacity_gbps,
                new_capacity_gbps=new_capacity,
                headroom_used_gbps=used,
                disrupted_traffic_gbps=solution.link_flow(real_id),
            )
        )

    # 3. merge fake flows into their physical twins
    assignments = []
    for assignment in solution.assignments:
        merged: dict[str, float] = {}
        for link_id, flow in assignment.edge_flows.items():
            real_id = augmented.fake_to_real.get(link_id, link_id)
            merged[real_id] = merged.get(real_id, 0.0) + flow
        assignments.append(
            FlowAssignment(
                demand=assignment.demand,
                allocated_gbps=assignment.allocated_gbps,
                edge_flows=merged,
            )
        )

    return TranslationResult(
        upgrades=tuple(upgrades),
        solution=TeSolution(upgraded, assignments),
    )


def _strip_fakes(augmented_topology: Topology) -> Topology:
    out = augmented_topology.copy(
        augmented_topology.name.removesuffix("-augmented")
    )
    for link in list(out.links):
        if link.is_fake:
            out.remove_link(link.link_id)
    return out


def _round_up_to_rung(
    needed_gbps: float, link, table: ModulationTable | None
) -> float:
    if table is None:
        return needed_gbps
    for fmt in table:
        if fmt.capacity_gbps >= needed_gbps - 1e-6:
            return fmt.capacity_gbps
    # above the ladder: cap at the physically feasible maximum
    return link.capacity_gbps + link.headroom_gbps
