"""The closed control loop: telemetry -> augment -> TE -> BVT.

:class:`DynamicCapacityController` is the deployment story of the paper
assembled from the pieces:

1. read each wavelength's SNR and ask the adaptation policy
   (:mod:`repro.core.policies`) for a target capacity;
2. apply forced *downgrades* first — a link whose SNR no longer
   sustains its rate flaps to a lower rung (or goes down entirely),
   which is the availability improvement of Section 2.2;
3. expose the remaining upgrade headroom to Algorithm 1
   (:mod:`repro.core.augmentation`) and run an **unmodified** TE
   algorithm on the augmented graph;
4. translate the TE output (:mod:`repro.core.translation`) into
   capacity upgrades and execute them on the per-link BVTs, accounting
   for reconfiguration downtime (standard ~68 s vs efficient ~35 ms,
   Section 3.1).

The TE algorithm is injected as a plain callable, underscoring the
paper's point: SWAN/B4/CSPF run here without modification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.bvt.transceiver import Bvt, ChangeProcedure
from repro.core.augmentation import augment_topology
from repro.core.penalties import PenaltyPolicy, TrafficDisruptionPenalty
from repro.core.policies import AdaptationPolicy, walk_policy
from repro.core.translation import LinkUpgrade, translate
from repro.net.demands import Demand
from repro.net.srlg import SrlgMap
from repro.net.topology import Topology
from repro.optics.modulation import DEFAULT_MODULATIONS, ModulationTable
from repro.te.lp import MultiCommodityLp
from repro.te.solution import TeSolution

#: a TE algorithm: (topology, demands) -> TeSolution
TeAlgorithm = Callable[[Topology, Sequence[Demand]], TeSolution]


def default_te_algorithm(topology: Topology, demands: Sequence[Demand]) -> TeSolution:
    """Min-penalty-at-max-throughput LP — the Theorem-1 objective."""
    return MultiCommodityLp(topology, demands).min_penalty_at_max_throughput().solution


@dataclass(frozen=True)
class LinkDowngrade:
    """A forced capacity reduction (SNR dropped)."""

    link_id: str
    old_capacity_gbps: float
    new_capacity_gbps: float

    @property
    def is_failure(self) -> bool:
        """True when even the slowest rung no longer closes."""
        return self.new_capacity_gbps <= 0.0


@dataclass(frozen=True)
class ControllerReport:
    """Everything one control-loop iteration did."""

    solution: TeSolution
    upgrades: tuple[LinkUpgrade, ...]
    downgrades: tuple[LinkDowngrade, ...]
    failed_links: tuple[str, ...]
    #: degraded links brought back toward their provisioned rate after
    #: their signal recovered (not TE-driven, unlike upgrades)
    restored_links: tuple[str, ...]
    reconfiguration_downtime_s: float
    #: traffic riding links while their BVT reconfigured (0 when the
    #: controller drained them first)
    traffic_disrupted_gbps: float = 0.0
    #: the TE state used while upgraded links were drained (only set
    #: when draining was enabled and upgrades happened)
    interim_solution: TeSolution | None = None
    #: maintenance batches the upgrades were executed in (SRLG-aware
    #: when the controller was given an SrlgMap; else one batch)
    n_reconfiguration_batches: int = 0

    @property
    def throughput_gbps(self) -> float:
        return self.solution.total_allocated_gbps

    @property
    def n_capacity_changes(self) -> int:
        return (
            len(self.upgrades)
            + len(self.restored_links)
            + sum(1 for d in self.downgrades if not d.is_failure)
        )


class DynamicCapacityController:
    """Stateful controller over one physical topology."""

    def __init__(
        self,
        topology: Topology,
        *,
        policy: AdaptationPolicy | None = None,
        penalty_policy: PenaltyPolicy | None = None,
        te_algorithm: TeAlgorithm = default_te_algorithm,
        table: ModulationTable = DEFAULT_MODULATIONS,
        procedure: ChangeProcedure = ChangeProcedure.EFFICIENT,
        drain_before_change: bool = False,
        srlgs: SrlgMap | None = None,
        seed: int = 0,
    ):
        """``drain_before_change`` applies Section 4.2's consistent-update
        recipe: before reconfiguring a link's BVT, re-run the TE with
        that link removed and move traffic onto the interim state, so
        even a slow (standard-procedure) change disturbs no flows.  The
        link downtime is unchanged; the *traffic* disruption drops to
        zero, at the cost of one extra TE solve per round with upgrades.

        ``srlgs`` makes upgrade execution shared-risk-aware: changes on
        the same fiber cable are serialised into separate maintenance
        batches (see :mod:`repro.core.scheduler`), so a cable never has
        all of its wavelengths reconfiguring at once.
        """
        self.physical = topology
        self.policy = policy if policy is not None else walk_policy(table=table)
        self.penalty_policy = (
            penalty_policy
            if penalty_policy is not None
            else TrafficDisruptionPenalty()
        )
        self.te_algorithm = te_algorithm
        self.table = table
        self.procedure = procedure
        self.drain_before_change = drain_before_change
        self.srlgs = srlgs
        self._rng = np.random.default_rng(seed)
        self.capacity: dict[str, float] = {
            l.link_id: l.capacity_gbps for l in topology.real_links()
        }
        #: as-provisioned capacities, used when restoring failed links
        #: under a no-upgrades policy
        self._configured = dict(self.capacity)
        self._bvts: dict[str, Bvt] = {}
        self._traffic: dict[str, float] = {}
        self.total_downtime_s = 0.0

    # -- hardware access ----------------------------------------------------

    def _bvt(self, link_id: str) -> Bvt:
        if link_id not in self._bvts:
            initial = self.capacity[link_id]
            if initial <= 0:
                # link is dark; model the transceiver at its provisioned rate
                initial = self._configured[link_id]
            if initial not in self.table.capacities_gbps:
                raise ValueError(
                    f"link {link_id} configured at {initial} Gbps, which is "
                    f"not on the modulation ladder {self.table.capacities_gbps}"
                )
            self._bvts[link_id] = Bvt(
                table=self.table, initial_capacity_gbps=initial
            )
        return self._bvts[link_id]

    def _reconfigure(self, link_id: str, capacity_gbps: float) -> float:
        """Drive the link's BVT to ``capacity_gbps``; returns downtime (s)."""
        result = self._bvt(link_id).change_modulation(
            capacity_gbps, self._rng, procedure=self.procedure
        )
        return result.downtime_s

    # -- engine integration ---------------------------------------------------

    def make_round_handler(
        self,
        demands: Sequence[Demand],
        *,
        engine: "Any | None" = None,
        collect: "Callable[[Any, ControllerReport], None] | None" = None,
    ) -> "Callable[[Any], ControllerReport]":
        """Adapt :meth:`step` into an event handler for TE-round events.

        The returned handler expects events whose payload is a
        :class:`~repro.engine.TelemetrySample` (``snr_db`` mapping plus
        grid position), runs one control-loop round on it, and

        * hands ``(sample, report)`` to ``collect`` for scenario-side
          accounting, and
        * publishes a ``controller.report`` notification on ``engine``
          so observers can meter every round without threading state
          through the scenario.

        The handler is a pure adapter: it draws no randomness and
        reorders nothing, so an engine-hosted replay is bit-identical
        to calling :meth:`step` in a loop.
        """

        def handle(event: "Any") -> ControllerReport:
            sample = event.payload
            report = self.step(sample.snr_db, demands)
            if collect is not None:
                collect(sample, report)
            if engine is not None:
                engine.publish("controller.report", report)
            return report

        return handle

    # -- the control loop -----------------------------------------------------

    def step(
        self,
        snr_by_link: Mapping[str, float],
        demands: Sequence[Demand],
    ) -> ControllerReport:
        """One TE recomputation round.

        Args:
            snr_by_link: current SNR (dB) per physical link id; links
                not mentioned are assumed healthy at their capacity.
            demands: the traffic matrix for this round.
        """
        downtime = 0.0
        downgrades: list[LinkDowngrade] = []
        failed: list[str] = []
        restored: list[str] = []

        # 1-2. forced downgrades / failures, and restoration of links
        # whose light came back
        for link_id, snr in snr_by_link.items():
            if link_id not in self.capacity:
                raise KeyError(f"unknown link {link_id!r}")
            current = self.capacity[link_id]
            configured = self._configured[link_id]
            if current <= 0:
                # the link is down; bring it back at a safe rate if the
                # signal recovered (no downtime: it was dark anyway)
                feasible = self.table.feasible_capacity(snr)
                restore = (
                    feasible
                    if self.policy.allow_upgrades
                    else min(feasible, configured)
                )
                if restore > 0:
                    self._reconfigure(link_id, restore)
                    self.capacity[link_id] = restore
                    restored.append(link_id)
                continue
            target = self.policy.target_capacity_gbps(current, snr)
            if target < current:
                downgrades.append(
                    LinkDowngrade(link_id, current, target)
                )
                if target > 0:
                    downtime += self._reconfigure(link_id, target)
                else:
                    failed.append(link_id)
                self.capacity[link_id] = target
            elif current < configured:
                # a previously-flapped link: recovery to the provisioned
                # rate is an operator invariant, not a TE decision (going
                # *beyond* the provisioned rate stays demand-driven).
                # The policy's hysteresis margin guards against flapping
                # right back.
                guarded = self.table.feasible_capacity(
                    snr - self.policy.upgrade_margin_db
                )
                restore = min(max(guarded, current), configured)
                if restore > current:
                    downtime += self._reconfigure(link_id, restore)
                    self.capacity[link_id] = restore
                    restored.append(link_id)

        # 3. working topology at post-downgrade capacities, with headroom
        working = Topology(f"{self.physical.name}@step")
        for node in self.physical.nodes:
            working.add_node(node)
        for link in self.physical.real_links():
            capacity = self.capacity[link.link_id]
            if capacity <= 0:
                continue  # link is down this round
            snr = snr_by_link.get(link.link_id)
            headroom = (
                self.policy.headroom_gbps(capacity, snr) if snr is not None else 0.0
            )
            working.add_link(
                link.src,
                link.dst,
                capacity,
                headroom_gbps=headroom,
                weight=link.weight,
                link_id=link.link_id,
            )

        # 4-5. augment and run the unmodified TE algorithm
        augmented = augment_topology(
            working,
            penalty_policy=self.penalty_policy,
            current_traffic=self._traffic,
        )
        te_solution = self.te_algorithm(augmented.topology, demands)

        # 6. translate and execute upgrades; optionally drain first so
        #    slow reconfigurations hit no traffic (Section 4.2)
        translation = translate(augmented, te_solution, table=self.table)
        interim = None
        disrupted = sum(u.disrupted_traffic_gbps for u in translation.upgrades)
        if (
            self.drain_before_change
            and translation.upgrades
        ):
            drained = working.copy(f"{working.name}-drained")
            for upgrade in translation.upgrades:
                drained.remove_link(upgrade.link_id)
            interim = self.te_algorithm(drained, demands)
            disrupted = 0.0  # traffic moved off before the BVTs touched
        if self.srlgs is not None and translation.upgrades:
            from repro.core.scheduler import schedule_reconfigurations

            schedule = schedule_reconfigurations(
                translation.upgrades, self.srlgs
            )
            n_batches = schedule.n_batches
            ordered_upgrades = [
                u for batch in schedule.batches for u in batch.upgrades
            ]
        else:
            n_batches = 1 if translation.upgrades else 0
            ordered_upgrades = list(translation.upgrades)
        for upgrade in ordered_upgrades:
            downtime += self._reconfigure(upgrade.link_id, upgrade.new_capacity_gbps)
            self.capacity[upgrade.link_id] = upgrade.new_capacity_gbps

        # 7. remember traffic for the next round's penalty computation
        self._traffic = {
            l.link_id: translation.solution.link_flow(l.link_id)
            for l in translation.solution.topology.links
        }
        self.total_downtime_s += downtime

        return ControllerReport(
            solution=translation.solution,
            upgrades=translation.upgrades,
            downgrades=tuple(downgrades),
            failed_links=tuple(failed),
            restored_links=tuple(restored),
            reconfiguration_downtime_s=downtime,
            traffic_disrupted_gbps=disrupted,
            interim_solution=interim,
            n_reconfiguration_batches=n_batches,
        )
