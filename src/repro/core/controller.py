"""The closed control loop: telemetry -> augment -> TE -> BVT.

:class:`DynamicCapacityController` is the deployment story of the paper
assembled from the pieces:

1. read each wavelength's SNR and ask the adaptation policy
   (:mod:`repro.core.policies`) for a target capacity;
2. apply forced *downgrades* first — a link whose SNR no longer
   sustains its rate flaps to a lower rung (or goes down entirely),
   which is the availability improvement of Section 2.2;
3. expose the remaining upgrade headroom to Algorithm 1
   (:mod:`repro.core.augmentation`) and run an **unmodified** TE
   algorithm on the augmented graph;
4. translate the TE output (:mod:`repro.core.translation`) into
   capacity upgrades and execute them on the per-link BVTs, accounting
   for reconfiguration downtime (standard ~68 s vs efficient ~35 ms,
   Section 3.1).

The TE algorithm is injected as a plain callable, underscoring the
paper's point: SWAN/B4/CSPF run here without modification.

The loop is *hardened* against degraded operation (the regime the
paper's §2 data says dominates): BVT reconfigurations that fail are
retried under a bounded exponential-backoff-with-jitter
:class:`RetryPolicy`; NaN/missing SNR readings trigger stale-telemetry
handling (hold the last good reading for a few rounds, then fall back
to a safe floor capacity); a configurable SNR guard band keeps flapping
readings from churning capacity; and a TE solve that raises
:class:`~repro.te.solution.TeSolverError` degrades gracefully to the
last known-good solution.  Every one of these paths is provably
zero-cost when unused: with clean telemetry and no fault injector
bound, the loop's arithmetic is bit-identical to the unhardened one
(the golden equivalence suite enforces this).
"""

from __future__ import annotations

import math
from collections import abc
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.bvt.transceiver import Bvt, BvtFaultError, ChangeProcedure
from repro.core.augmentation import augment_topology
from repro.core.penalties import PenaltyPolicy, TrafficDisruptionPenalty
from repro.core.policies import AdaptationPolicy, walk_policy
from repro.core.translation import LinkUpgrade, translate
from repro.net.demands import Demand
from repro.net.srlg import SrlgMap
from repro.net.topology import Topology
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.optics.modulation import (
    DEFAULT_MODULATIONS,
    LOSS_OF_LIGHT_SNR_DB,
    ModulationTable,
)
from repro.recovery.journal import ControllerCrash, StateJournal, journal_exists, reopen
from repro.recovery.reports import report_payload, restore_solution
from repro.seeds import component_rng
from repro.state import NetworkState, StateStore
from repro.te.incremental import CachedTeAlgorithm, te_cache_enabled
from repro.te.lp import MultiCommodityLp
from repro.te.solution import TeSolution, TeSolverError, empty_solution

#: a TE algorithm: (topology, demands) -> TeSolution
TeAlgorithm = Callable[[Topology, Sequence[Demand]], TeSolution]


def default_te_algorithm(topology: Topology, demands: Sequence[Demand]) -> TeSolution:
    """Min-penalty-at-max-throughput LP — the Theorem-1 objective."""
    return MultiCommodityLp(topology, demands).min_penalty_at_max_throughput().solution


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and jitter.

    ``max_retries`` is the number of attempts *beyond* the first; 0
    reproduces the unhardened fail-fast behaviour exactly.  Backoff
    delays are simulated controller wall-clock (reported, not added to
    link downtime: the link keeps its old configuration while the
    controller waits) and the jitter draw comes from a dedicated
    component rng, so enabling retries does not shift any other stream.
    """

    max_retries: int = 3
    base_delay_s: float = 1.0
    multiplier: float = 2.0
    jitter_frac: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_delay_s < 0:
            raise ValueError("base_delay_s must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ValueError("jitter_frac must be in [0, 1)")

    def delay_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retry number ``attempt + 1`` (0-based)."""
        delay = self.base_delay_s * self.multiplier**attempt
        if self.jitter_frac > 0.0:
            delay *= 1.0 + self.jitter_frac * float(rng.uniform(-1.0, 1.0))
        return delay


@dataclass(frozen=True)
class _ReconfigOutcome:
    """What one (possibly retried) BVT reconfiguration attempt did."""

    downtime_s: float
    ok: bool
    retries: int
    backoff_s: float


@dataclass(frozen=True)
class LinkDowngrade:
    """A forced capacity reduction (SNR dropped)."""

    link_id: str
    old_capacity_gbps: float
    new_capacity_gbps: float

    @property
    def is_failure(self) -> bool:
        """True when even the slowest rung no longer closes."""
        return self.new_capacity_gbps <= 0.0


@dataclass(frozen=True)
class ControllerReport:
    """Everything one control-loop iteration did."""

    solution: TeSolution
    upgrades: tuple[LinkUpgrade, ...]
    downgrades: tuple[LinkDowngrade, ...]
    failed_links: tuple[str, ...]
    #: degraded links brought back toward their provisioned rate after
    #: their signal recovered (not TE-driven, unlike upgrades)
    restored_links: tuple[str, ...]
    reconfiguration_downtime_s: float
    #: traffic riding links while their BVT reconfigured (0 when the
    #: controller drained them first)
    traffic_disrupted_gbps: float = 0.0
    #: the TE state used while upgraded links were drained (only set
    #: when draining was enabled and upgrades happened)
    interim_solution: TeSolution | None = None
    #: maintenance batches the upgrades were executed in (SRLG-aware
    #: when the controller was given an SrlgMap; else one batch)
    n_reconfiguration_batches: int = 0
    #: reconfiguration/TE attempts beyond the first (retry accounting)
    n_retries: int = 0
    #: simulated controller wall-clock spent backing off between retries
    retry_backoff_s: float = 0.0
    #: links whose reconfiguration exhausted every retry this round
    reconfig_failed_links: tuple[str, ...] = ()
    #: True when the TE solve failed and the controller held the last
    #: known-good solution (or the empty one) instead
    te_fallback: bool = False
    #: links decided on held or fallen-back telemetry (NaN readings)
    stale_links: tuple[str, ...] = ()
    #: capacity the round intended to configure but could not (or
    #: conservatively withheld) because of faults
    fault_capacity_loss_gbps: float = 0.0
    #: links left above the capacity their decision-time SNR supports
    #: (audited only when a fault injector is bound; must stay empty)
    ber_violations: tuple[str, ...] = ()

    @property
    def throughput_gbps(self) -> float:
        return self.solution.total_allocated_gbps

    @property
    def n_capacity_changes(self) -> int:
        return (
            len(self.upgrades)
            + len(self.restored_links)
            + sum(1 for d in self.downgrades if not d.is_failure)
        )


class _CapacityView(abc.Mapping):
    """Read-only ``{link_id: capacity_gbps}`` over the controller's state.

    The controller's authoritative record now lives in a
    :class:`~repro.state.NetworkState` lineage; this view keeps the
    long-standing ``controller.capacity`` mapping interface (lookups,
    ``.get``, iteration, ``==`` against dicts) working on top of it
    without a second copy to drift.
    """

    __slots__ = ("_controller",)

    def __init__(self, controller: "DynamicCapacityController"):
        self._controller = controller

    def __getitem__(self, link_id: str) -> float:
        return self._controller.state.link(link_id).capacity_gbps

    def get(self, link_id: str, default: Any = None) -> Any:
        # overridden (Mapping's mixin goes through __getitem__ +
        # KeyError) because sim hot paths call this per sample
        link = self._controller.state.links.get(link_id)
        return default if link is None else link.capacity_gbps

    def __contains__(self, link_id: object) -> bool:
        return link_id in self._controller.state.links

    def __iter__(self) -> Iterator[str]:
        return iter(self._controller.state.links)

    def __len__(self) -> int:
        return len(self._controller.state.links)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, abc.Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"_CapacityView({dict(self)!r})"


class DynamicCapacityController:
    """Stateful controller over one physical topology."""

    def __init__(
        self,
        topology: Topology,
        *,
        policy: AdaptationPolicy | None = None,
        penalty_policy: PenaltyPolicy | None = None,
        te_algorithm: TeAlgorithm = default_te_algorithm,
        table: ModulationTable = DEFAULT_MODULATIONS,
        procedure: ChangeProcedure = ChangeProcedure.EFFICIENT,
        drain_before_change: bool = False,
        srlgs: SrlgMap | None = None,
        seed: int = 0,
        retry: RetryPolicy | None = None,
        guard_band_db: float = 0.0,
        stale_hold_rounds: int = 3,
        stale_fallback_gbps: float = 50.0,
        audit: bool = False,
        te_cache: bool | None = None,
    ):
        """``drain_before_change`` applies Section 4.2's consistent-update
        recipe: before reconfiguring a link's BVT, re-run the TE with
        that link removed and move traffic onto the interim state, so
        even a slow (standard-procedure) change disturbs no flows.  The
        link downtime is unchanged; the *traffic* disruption drops to
        zero, at the cost of one extra TE solve per round with upgrades.

        ``srlgs`` makes upgrade execution shared-risk-aware: changes on
        the same fiber cable are serialised into separate maintenance
        batches (see :mod:`repro.core.scheduler`), so a cable never has
        all of its wavelengths reconfiguring at once.

        Robustness knobs (all inert on clean runs):

        ``retry`` bounds how hard failed BVT reconfigurations and TE
        solves are retried (None = fail fast, the unhardened
        behaviour).  ``guard_band_db`` is extra SNR margin required
        before any capacity *increase* (upgrades and restores) on top
        of the policy's own hysteresis — downgrades always act on the
        raw reading, so the guard can only make the loop more
        conservative.  A NaN SNR reading marks the link stale: its
        last good reading is held for ``stale_hold_rounds`` rounds,
        after which the link falls back to ``stale_fallback_gbps``
        (the paper's degraded 50 Gbps floor) until telemetry returns.
        ``audit`` forces the per-round BER-feasibility audit even with
        no fault injector bound.

        ``te_cache`` governs the incremental TE accelerator
        (:mod:`repro.te.incremental`): when on — the default, unless
        ``REPRO_TE_NO_CACHE``/``REPRO_NO_CACHE`` is set — and the
        controller runs the *default* TE objective, per-round solves go
        through a private :class:`~repro.te.incremental.TeSolveCache`
        (structure reuse + exact memoization, bit-identical to fresh
        solves).  A custom ``te_algorithm`` is never wrapped: its
        purity is unknown.  Each controller owns its cache, so paired
        chaos runs and side-by-side policy comparisons stay isolated.
        """
        self.physical = topology
        self.policy = policy if policy is not None else walk_policy(table=table)
        self.penalty_policy = (
            penalty_policy
            if penalty_policy is not None
            else TrafficDisruptionPenalty()
        )
        self._te_base = te_algorithm
        self.te_algorithm = te_algorithm
        self.configure_te_cache(te_cache_enabled(te_cache))
        self.table = table
        self.procedure = procedure
        self.drain_before_change = drain_before_change
        self.srlgs = srlgs
        self.retry = retry
        if guard_band_db < 0:
            raise ValueError("guard_band_db must be non-negative")
        if stale_hold_rounds < 0:
            raise ValueError("stale_hold_rounds must be non-negative")
        if stale_fallback_gbps < 0:
            raise ValueError("stale_fallback_gbps must be non-negative")
        self.guard_band_db = guard_band_db
        self.stale_hold_rounds = stale_hold_rounds
        self.stale_fallback_gbps = stale_fallback_gbps
        self.audit = audit
        self._rng = np.random.default_rng(seed)
        #: jitter/backoff draws live on their own stream so enabling
        #: retries cannot shift the hardware-model draws
        self._backoff_rng = component_rng(seed, "controller.backoff")
        self._faults: Any | None = None
        #: the authoritative network record: per-link capacity,
        #: configured rate, telemetry health and BVT status, evolved
        #: through versioned copy-on-write transitions each round
        self.state_store = StateStore(
            NetworkState.from_topology(topology),
            name=f"controller:{topology.name}",
        )
        #: read-only mapping view over the state (the old public dict)
        self.capacity: Mapping[str, float] = _CapacityView(self)
        self._bvts: dict[str, Bvt] = {}
        self._traffic: dict[str, float] = {}
        self._last_solution: TeSolution | None = None
        self.total_downtime_s = 0.0
        #: durable write-ahead journal, when bound (see bind_journal)
        self._journal: StateJournal | None = None
        #: rounds sealed by _commit_round (the journal's round counter)
        self.rounds_completed = 0
        #: scenario-provided context journaled with each round frame
        #: (sample time, round indices — whatever the host needs back
        #: to resume); hosts assign it before calling step()
        self._round_context: dict[str, Any] = {}

    @property
    def state(self) -> NetworkState:
        """The latest committed :class:`~repro.state.NetworkState`."""
        return self.state_store.latest

    def _commit(self, updates: Mapping[str, Mapping[str, Any]], label: str) -> None:
        """Publish one batch of per-link changes as a state transition."""
        if updates:
            self.state_store.commit(self.state.evolve(updates, label=label))

    # -- TE solve cache -------------------------------------------------------

    def configure_te_cache(self, enabled: bool | None) -> None:
        """Switch the incremental TE solve cache on or off.

        ``None`` leaves the current wiring untouched (scenario helpers
        pass their own ``te_cache`` knob straight through).  Only the
        default objective is ever wrapped: a custom ``te_algorithm``
        runs unwrapped either way, and an explicitly injected
        :class:`~repro.te.incremental.CachedTeAlgorithm` is the
        caller's to manage.  Enabling twice keeps the existing cache
        (and its warmed structures); disabling restores the exact
        callable the controller was constructed with.
        """
        if enabled is None:
            return
        if enabled:
            if self._te_base is default_te_algorithm and not isinstance(
                self.te_algorithm, CachedTeAlgorithm
            ):
                self.te_algorithm = CachedTeAlgorithm()
        else:
            self.te_algorithm = self._te_base

    # -- fault injection ------------------------------------------------------

    def bind_faults(self, injector: Any) -> None:
        """Arm a :class:`~repro.faults.inject.FaultInjector` (or any
        object with ``bvt_verdict(link_id)`` / ``te_fails()``).

        Call before the first :meth:`step`; BVTs created afterwards get
        their fault hook automatically, and any already-created BVT is
        re-armed here.  An injector that understands state lineages
        (``attach_state``) is seeded with the controller's current
        snapshot so it can evolve observed-vs-truth lineages from a
        shared ancestor.
        """
        self._faults = injector
        attach = getattr(injector, "attach_state", None)
        if attach is not None:
            attach(self.state)
        for link_id, bvt in self._bvts.items():
            bvt.fault_hook = self._bvt_fault_hook(link_id)

    def _bvt_fault_hook(self, link_id: str) -> Callable[[], str | None] | None:
        if self._faults is None:
            return None
        injector = self._faults
        return lambda: injector.bvt_verdict(link_id)

    # -- durability -----------------------------------------------------------

    def bind_journal(
        self,
        directory: Any,
        *,
        resume: bool | str = False,
        checkpoint_every: int = 8,
        fsync: str = "round",
    ) -> list[dict[str, Any]]:
        """Journal every state transition and round to ``directory``.

        Call before the first :meth:`step` (and *after*
        :meth:`bind_faults`, so a resumed run can restore the
        injector's sequential streams).  ``resume=False`` starts a
        fresh journal — refusing to clobber an existing one;
        ``resume=True`` recovers the directory and continues the
        crashed run mid-round; ``resume="auto"`` resumes exactly when
        a journal is already there.

        Returns the recovered runs' committed round payloads, oldest
        first (empty for a fresh journal): the host scenario replays
        their contexts/reports into its own accounting and skips that
        many round events, after which the continued run is
        bit-identical to an uninterrupted one.
        """
        if self._journal is not None:
            raise RuntimeError("a journal is already bound")
        if resume == "auto":
            resume = journal_exists(directory)
        if not resume:
            if journal_exists(directory):
                raise FileExistsError(
                    f"{directory} already holds a journal; pass resume=True "
                    "(or 'auto') to continue it"
                )
            journal = StateJournal(
                directory, checkpoint_every=checkpoint_every, fsync=fsync
            )
            journal.start(self.state)
            self._journal = journal
            self.state_store.attach_journal(journal)
            return []
        journal, recovered = reopen(
            directory, checkpoint_every=checkpoint_every, fsync=fsync
        )
        # re-root the recovered snapshot on the controller's own
        # physical topology: link iteration order (LP variable layout)
        # must come from the object the rest of this run uses
        state = NetworkState(
            self.physical,
            dict(recovered.state.links),
            version=recovered.state.version,
            parent_version=recovered.state.parent_version,
            label=recovered.state.label,
        )
        self.state_store = StateStore(
            state, name=f"controller:{self.physical.name}"
        )
        self.state_store.attach_journal(journal)
        self._journal = journal
        self.rounds_completed = recovered.n_rounds
        last = recovered.last_round
        if last is not None:
            self._restore_runtime(last["runtime"], last["report"])
        return recovered.rounds

    def runtime_payload(self) -> dict[str, Any]:
        """Everything beyond the state a resumed run must restore.

        Journaled with every round frame: rng streams (exact
        generator states — JSON carries the big ints losslessly),
        traffic memory for the next round's penalties, downtime
        accounting, per-link BVT configured rates, and the fault
        injector's sequential streams when one is bound.
        """
        payload: dict[str, Any] = {
            "rng": self._rng.bit_generator.state,
            "backoff_rng": self._backoff_rng.bit_generator.state,
            "traffic": dict(self._traffic),
            "total_downtime_s": self.total_downtime_s,
            "bvts": {
                link_id: self._bvts[link_id].capacity_gbps
                for link_id in sorted(self._bvts)
            },
            "has_last_solution": self._last_solution is not None,
        }
        if self._faults is not None:
            snapshot = getattr(self._faults, "runtime_payload", None)
            if snapshot is not None:
                payload["faults"] = snapshot()
        return payload

    def _restore_runtime(
        self,
        runtime: Mapping[str, Any],
        last_report_payload: Mapping[str, Any] | None,
    ) -> None:
        self._rng = np.random.default_rng(0)
        self._rng.bit_generator.state = runtime["rng"]
        self._backoff_rng = np.random.default_rng(0)
        self._backoff_rng.bit_generator.state = runtime["backoff_rng"]
        self._traffic = {k: float(v) for k, v in runtime["traffic"].items()}
        self.total_downtime_s = float(runtime["total_downtime_s"])
        self._bvts = {}
        for link_id, capacity in runtime["bvts"].items():
            bvt = Bvt(table=self.table, initial_capacity_gbps=capacity)
            bvt.fault_hook = self._bvt_fault_hook(link_id)
            self._bvts[link_id] = bvt
        if runtime["has_last_solution"] and last_report_payload is not None:
            # after any committed round, _last_solution is exactly the
            # round's reported solution (step 7) — unless that round
            # fell back with no prior solution, in which case the
            # marker is False and the fallback stays empty on resume
            self._last_solution = restore_solution(
                last_report_payload["solution"]
            )
        if "faults" in runtime and self._faults is not None:
            restore = getattr(self._faults, "restore_runtime", None)
            if restore is not None:
                restore(runtime["faults"])

    def _commit_round(self, report: ControllerReport) -> None:
        """Seal one round: journal the round frame, honour crash seams.

        The round frame is the durability point — everything before it
        (the round's state transitions) only *counts* once this frame
        lands.  A bound ``controller.crash`` fault fires here:
        ``pre-commit`` dies before the frame (the round rolls back on
        recovery), ``mid-write`` tears the frame on disk, and
        ``post-commit`` dies after it (the round survives).  Seams are
        honoured even with no journal bound, so crash faults can test
        unjournaled hosts too.
        """
        round_index = self.rounds_completed
        seam: str | None = None
        if self._faults is not None:
            crash = getattr(self._faults, "crash_seam", None)
            if crash is not None:
                seam = crash(round_index)
        if seam == "pre-commit":
            raise ControllerCrash(round_index, seam)
        if self._journal is not None:
            payload = {
                "round": round_index,
                "context": dict(self._round_context),
                "report": report_payload(report),
                "runtime": self.runtime_payload(),
            }
            if seam == "mid-write":
                self._journal.write_torn_round(payload)
                raise ControllerCrash(round_index, seam)
            self._journal.commit_round(payload)
        elif seam == "mid-write":
            raise ControllerCrash(round_index, seam)
        self.rounds_completed += 1
        if seam == "post-commit":
            raise ControllerCrash(round_index, seam)
        if self._journal is not None:
            self._journal.maybe_checkpoint(self.state, self.rounds_completed)

    def enforce_capacity(
        self, link_id: str, capacity_gbps: float, *, label: str = "enforce"
    ) -> None:
        """Force one link's recorded capacity outside the round flow.

        The safety-invariant escape hatch (the monitor's ``degrade``
        policy pins a BER-violating link back to its feasible rate):
        commits a single-link state transition without touching the
        BVT model — the *record* is corrected now, the hardware
        follows at the next round like any other downgrade.
        """
        link = self.state.links[link_id]
        if link.capacity_gbps == capacity_gbps:
            return
        self._commit({link_id: {"capacity_gbps": capacity_gbps}}, label)

    # -- hardware access ----------------------------------------------------

    def _bvt(self, link_id: str) -> Bvt:
        if link_id not in self._bvts:
            link = self.state.link(link_id)
            initial = link.capacity_gbps
            if initial <= 0:
                # link is dark; model the transceiver at its provisioned rate
                initial = link.configured_gbps
            if initial not in self.table.capacities_gbps:
                raise ValueError(
                    f"link {link_id} configured at {initial} Gbps, which is "
                    f"not on the modulation ladder {self.table.capacities_gbps}"
                )
            bvt = Bvt(table=self.table, initial_capacity_gbps=initial)
            bvt.fault_hook = self._bvt_fault_hook(link_id)
            self._bvts[link_id] = bvt
        return self._bvts[link_id]

    def _bvt_status(self, link_id: str) -> dict[str, Any]:
        """The link's BVT status fields after a successful reconfigure."""
        bvt = self._bvts[link_id]
        return {"bvt_gbps": bvt.capacity_gbps, "modulation": bvt.format.name}

    def _reconfigure(self, link_id: str, capacity_gbps: float) -> _ReconfigOutcome:
        """Drive the link's BVT to ``capacity_gbps``, retrying failures.

        A failed attempt consumes no downtime (the BVT refuses before
        any timed step) and leaves the link at its old configuration;
        retries back off per :attr:`retry`.  With no retry policy the
        first failure is final — the unhardened fail-fast behaviour.
        """
        with _trace.span(
            "bvt.reconfigure", link=link_id, target_gbps=capacity_gbps
        ) as sp:
            outcome = self._reconfigure_attempts(link_id, capacity_gbps)
            if sp is not None:
                sp.set(
                    ok=outcome.ok,
                    retries=outcome.retries,
                    downtime_s=outcome.downtime_s,
                    backoff_s=outcome.backoff_s,
                )
            if outcome.ok:
                _metrics.histogram("controller.reconfig_downtime_s").observe(
                    outcome.downtime_s
                )
            else:
                _metrics.counter("controller.reconfig_failures").inc()
            return outcome

    def _reconfigure_attempts(
        self, link_id: str, capacity_gbps: float
    ) -> _ReconfigOutcome:
        attempts = 1 + (self.retry.max_retries if self.retry is not None else 0)
        retries = 0
        backoff_s = 0.0
        for attempt in range(attempts):
            try:
                result = self._bvt(link_id).change_modulation(
                    capacity_gbps, self._rng, procedure=self.procedure
                )
            except BvtFaultError:
                if attempt + 1 >= attempts:
                    return _ReconfigOutcome(0.0, False, retries, backoff_s)
                retries += 1
                delay_s = self.retry.delay_s(attempt, self._backoff_rng)
                backoff_s += delay_s
                _trace.point(
                    "bvt.retry", link=link_id, attempt=attempt, backoff_s=delay_s
                )
            else:
                return _ReconfigOutcome(result.downtime_s, True, retries, backoff_s)
        raise AssertionError("unreachable")

    def _solve_te(
        self, topology: Topology, demands: Sequence[Demand]
    ) -> tuple[TeSolution | None, int, float]:
        """One TE solve with fault injection, retry and backoff.

        Returns ``(solution | None, retries, backoff_s)``; ``None``
        means every attempt raised and the caller must degrade.

        Retry attempts within a round reuse the already-assembled LP:
        the injected fault gate raises *before* the algorithm runs, and
        a genuine :class:`~repro.te.solution.TeSolverError` from the
        cached default algorithm leaves the assembled structure in the
        controller's :class:`~repro.te.incremental.TeSolveCache` — so a
        retried round pays at most one assembly, not one per attempt.
        """
        with _trace.span(
            "te.solve", n_links=len(topology.links), n_demands=len(demands)
        ) as sp:
            solution, retries, backoff_s = self._solve_te_attempts(
                topology, demands
            )
            if sp is not None:
                sp.set(
                    ok=solution is not None,
                    retries=retries,
                    backoff_s=backoff_s,
                )
            if solution is None:
                _metrics.counter("controller.te_fallbacks").inc()
            return solution, retries, backoff_s

    def _solve_te_attempts(
        self, topology: Topology, demands: Sequence[Demand]
    ) -> tuple[TeSolution | None, int, float]:
        attempts = 1 + (self.retry.max_retries if self.retry is not None else 0)
        retries = 0
        backoff_s = 0.0
        for attempt in range(attempts):
            try:
                if self._faults is not None and self._faults.te_fails():
                    raise TeSolverError("injected TE solver failure")
                return self.te_algorithm(topology, demands), retries, backoff_s
            except TeSolverError:
                if attempt + 1 >= attempts:
                    return None, retries, backoff_s
                retries += 1
                delay_s = self.retry.delay_s(attempt, self._backoff_rng)
                backoff_s += delay_s
                _trace.point("te.retry", attempt=attempt, backoff_s=delay_s)
        raise AssertionError("unreachable")

    # -- engine integration ---------------------------------------------------

    def make_round_handler(
        self,
        demands: Sequence[Demand],
        *,
        engine: "Any | None" = None,
        collect: "Callable[[Any, ControllerReport], None] | None" = None,
    ) -> "Callable[[Any], ControllerReport]":
        """Adapt :meth:`step` into an event handler for TE-round events.

        The returned handler expects events whose payload is a
        :class:`~repro.engine.TelemetrySample` (``snr_db`` mapping plus
        grid position), runs one control-loop round on it, and

        * hands ``(sample, report)`` to ``collect`` for scenario-side
          accounting, and
        * publishes a ``controller.report`` notification on ``engine``
          so observers can meter every round without threading state
          through the scenario.

        The handler is a pure adapter: it draws no randomness and
        reorders nothing, so an engine-hosted replay is bit-identical
        to calling :meth:`step` in a loop.
        """

        def handle(event: "Any") -> ControllerReport:
            sample = event.payload
            self._round_context = {"time_s": sample.time_s}
            report = self.step(sample.snr_db, demands)
            if collect is not None:
                collect(sample, report)
            if engine is not None:
                engine.publish("controller.report", report)
            return report

        return handle

    # -- the control loop -----------------------------------------------------

    def step(
        self,
        snr_by_link: Mapping[str, float],
        demands: Sequence[Demand],
    ) -> ControllerReport:
        """One TE recomputation round.

        Args:
            snr_by_link: current SNR (dB) per physical link id; links
                not mentioned are assumed healthy at their capacity.
                A NaN reading marks the link's telemetry stale and
                triggers hold-then-fallback handling (see the
                constructor's robustness knobs).
            demands: the traffic matrix for this round.
        """
        _metrics.counter("controller.rounds").inc()
        with _trace.span("controller.round") as sp:
            report = self._step_round(snr_by_link, demands)
            if sp is not None:
                sp.set(
                    throughput_gbps=report.throughput_gbps,
                    n_upgrades=len(report.upgrades),
                    n_downgrades=len(report.downgrades),
                    n_retries=report.n_retries,
                    downtime_s=report.reconfiguration_downtime_s,
                    te_fallback=report.te_fallback,
                )
        self._commit_round(report)
        return report

    def _step_round(
        self,
        snr_by_link: Mapping[str, float],
        demands: Sequence[Demand],
    ) -> ControllerReport:
        downtime = 0.0
        n_retries = 0
        backoff_s = 0.0
        fault_loss = 0.0
        downgrades: list[LinkDowngrade] = []
        failed: list[str] = []
        restored: list[str] = []
        reconfig_failed: list[str] = []

        # 0. stale-telemetry screening: a NaN reading is replaced by the
        # link's last good reading for up to ``stale_hold_rounds``
        # rounds (hold-last-safe), then by the safe-floor fallback
        # threshold; a dark link never restores on a stale reading.
        # The screened readings become one batched "telemetry" state
        # transition (per-link decisions are independent, so batching
        # cannot change any of them).
        effective: dict[str, float] = {}
        stale: list[str] = []
        telemetry: dict[str, dict[str, Any]] = {}
        state = self.state
        for link_id, snr in snr_by_link.items():
            link = state.links.get(link_id)
            if link is None:
                raise KeyError(f"unknown link {link_id!r}")
            if math.isnan(snr):
                stale.append(link_id)
                age = link.stale_rounds + 1
                telemetry[link_id] = {"snr_db": snr, "stale_rounds": age}
                if link.capacity_gbps <= 0:
                    effective[link_id] = LOSS_OF_LIGHT_SNR_DB
                elif age <= self.stale_hold_rounds and link.last_good_snr_db is not None:
                    effective[link_id] = link.last_good_snr_db
                else:
                    effective[link_id] = self.table.required_snr(
                        self.stale_fallback_gbps
                    )
            else:
                telemetry[link_id] = {
                    "snr_db": snr,
                    "last_good_snr_db": snr,
                    "stale_rounds": 0,
                }
                effective[link_id] = snr
        stale_set = frozenset(stale)
        self._commit(telemetry, "telemetry")

        # 1-2. forced downgrades / failures, and restoration of links
        # whose light came back.  Every link is visited at most once
        # and no decision reads another link's new capacity, so the
        # writes batch into one "adapt" transition committed after the
        # loop; reads go against the post-telemetry snapshot — the
        # same values the sequential writes exposed.
        state = self.state
        adapt: dict[str, dict[str, Any]] = {}
        for link_id, snr in effective.items():
            link = state.links[link_id]
            current = link.capacity_gbps
            configured = link.configured_gbps
            if current <= 0:
                # the link is down; bring it back at a safe rate if the
                # signal recovered (no downtime: it was dark anyway)
                feasible = self.table.feasible_capacity(snr - self.guard_band_db)
                restore = (
                    feasible
                    if self.policy.allow_upgrades
                    else min(feasible, configured)
                )
                if restore > 0:
                    outcome = self._reconfigure(link_id, restore)
                    n_retries += outcome.retries
                    backoff_s += outcome.backoff_s
                    if outcome.ok:
                        adapt[link_id] = {
                            "capacity_gbps": restore,
                            **self._bvt_status(link_id),
                        }
                        restored.append(link_id)
                    else:
                        reconfig_failed.append(link_id)
                        fault_loss += restore
                continue
            target = self.policy.target_capacity_gbps(current, snr)
            if target < current:
                if link_id in stale_set:
                    fault_loss += current - target
                if target > 0:
                    outcome = self._reconfigure(link_id, target)
                    n_retries += outcome.retries
                    backoff_s += outcome.backoff_s
                    if outcome.ok:
                        downtime += outcome.downtime_s
                        downgrades.append(LinkDowngrade(link_id, current, target))
                        adapt[link_id] = {
                            "capacity_gbps": target,
                            **self._bvt_status(link_id),
                        }
                    else:
                        # the BVT will not re-modulate and the current
                        # rate is SNR-infeasible: take the link dark
                        # rather than hold it above its BER floor
                        downgrades.append(LinkDowngrade(link_id, current, 0.0))
                        failed.append(link_id)
                        reconfig_failed.append(link_id)
                        fault_loss += target
                        adapt[link_id] = {"capacity_gbps": 0.0}
                else:
                    downgrades.append(LinkDowngrade(link_id, current, target))
                    failed.append(link_id)
                    adapt[link_id] = {"capacity_gbps": target}
            elif current < configured:
                # a previously-flapped link: recovery to the provisioned
                # rate is an operator invariant, not a TE decision (going
                # *beyond* the provisioned rate stays demand-driven).
                # The policy's hysteresis margin — plus the controller's
                # guard band — protects against flapping right back.
                guarded = self.table.feasible_capacity(
                    snr - self.policy.upgrade_margin_db - self.guard_band_db
                )
                restore = min(max(guarded, current), configured)
                if restore > current:
                    outcome = self._reconfigure(link_id, restore)
                    n_retries += outcome.retries
                    backoff_s += outcome.backoff_s
                    if outcome.ok:
                        downtime += outcome.downtime_s
                        adapt[link_id] = {
                            "capacity_gbps": restore,
                            **self._bvt_status(link_id),
                        }
                        restored.append(link_id)
                    else:
                        reconfig_failed.append(link_id)
                        fault_loss += restore - current
        self._commit(adapt, "adapt")

        # 3. working topology at post-downgrade capacities, with headroom
        working = Topology(f"{self.physical.name}@step")
        for node in self.physical.nodes:
            working.add_node(node)
        for link in self.physical.real_links():
            capacity = self.capacity[link.link_id]
            if capacity <= 0:
                continue  # link is down this round
            snr = effective.get(link.link_id)
            headroom = (
                self.policy.headroom_gbps(capacity, snr - self.guard_band_db)
                if snr is not None
                else 0.0
            )
            working.add_link(
                link.src,
                link.dst,
                capacity,
                headroom_gbps=headroom,
                weight=link.weight,
                link_id=link.link_id,
            )

        # 4-5. augment and run the unmodified TE algorithm; if every
        #      attempt raises, degrade to the last known-good solution
        #      (or the empty allocation) rather than crashing the loop
        augmented = augment_topology(
            working,
            penalty_policy=self.penalty_policy,
            current_traffic=self._traffic,
        )
        te_solution, te_retries, te_backoff = self._solve_te(
            augmented.topology, demands
        )
        n_retries += te_retries
        backoff_s += te_backoff
        te_fallback = te_solution is None

        if te_fallback:
            # hold: no upgrades, keep the traffic memory, reuse the
            # last solution's allocation figures for reporting
            held = (
                self._last_solution
                if self._last_solution is not None
                else empty_solution(working, demands)
            )
            solution = held
            upgrades: tuple[LinkUpgrade, ...] = ()
            interim = None
            disrupted = 0.0
            n_batches = 0
        else:
            # 6. translate and execute upgrades; optionally drain first
            #    so slow reconfigurations hit no traffic (Section 4.2)
            translation = translate(augmented, te_solution, table=self.table)
            solution = translation.solution
            upgrades = translation.upgrades
            interim = None
            disrupted = sum(u.disrupted_traffic_gbps for u in upgrades)
            if self.drain_before_change and upgrades:
                drained = working.copy(f"{working.name}-drained")
                for upgrade in upgrades:
                    drained.remove_link(upgrade.link_id)
                interim, drain_retries, drain_backoff = self._solve_te(
                    drained, demands
                )
                n_retries += drain_retries
                backoff_s += drain_backoff
                if interim is not None:
                    disrupted = 0.0  # traffic moved off before the BVTs touched
                # else: drain solve failed — proceed undrained, the
                # original disruption estimate stands
            if self.srlgs is not None and upgrades:
                from repro.core.scheduler import schedule_reconfigurations

                schedule = schedule_reconfigurations(upgrades, self.srlgs)
                n_batches = schedule.n_batches
                ordered_upgrades = [
                    u for batch in schedule.batches for u in batch.upgrades
                ]
            else:
                n_batches = 1 if upgrades else 0
                ordered_upgrades = list(upgrades)
            # one upgrade per link, so these writes batch into one
            # "upgrades" transition; the held-rate read on a refused
            # upgrade sees the post-adapt snapshot, which no upgrade
            # before it in the batch can have touched
            executed: dict[str, dict[str, Any]] = {}
            for upgrade in ordered_upgrades:
                outcome = self._reconfigure(
                    upgrade.link_id, upgrade.new_capacity_gbps
                )
                n_retries += outcome.retries
                backoff_s += outcome.backoff_s
                if outcome.ok:
                    downtime += outcome.downtime_s
                    executed[upgrade.link_id] = {
                        "capacity_gbps": upgrade.new_capacity_gbps,
                        **self._bvt_status(upgrade.link_id),
                    }
                else:
                    # upgrade refused: hold the current (safe) rate
                    reconfig_failed.append(upgrade.link_id)
                    fault_loss += (
                        upgrade.new_capacity_gbps - self.capacity[upgrade.link_id]
                    )
            self._commit(executed, "upgrades")

            # 7. remember traffic for the next round's penalty computation
            self._traffic = {
                l.link_id: solution.link_flow(l.link_id)
                for l in solution.topology.links
            }
            self._last_solution = solution

        self.total_downtime_s += downtime

        # 8. BER-feasibility audit: no link may sit above the capacity
        #    its decision-time (effective) SNR supports.  Cheap, but the
        #    clean path skips it to stay bit-for-bit unchanged.
        violations: tuple[str, ...] = ()
        if self.audit or self._faults is not None:
            violations = tuple(
                link_id
                for link_id, snr in effective.items()
                if self.capacity[link_id]
                > self.table.feasible_capacity(snr) + 1e-9
            )

        return ControllerReport(
            solution=solution,
            upgrades=upgrades,
            downgrades=tuple(downgrades),
            failed_links=tuple(failed),
            restored_links=tuple(restored),
            reconfiguration_downtime_s=downtime,
            traffic_disrupted_gbps=disrupted,
            interim_solution=interim,
            n_reconfiguration_batches=n_batches,
            n_retries=n_retries,
            retry_backoff_s=backoff_s,
            reconfig_failed_links=tuple(reconfig_failed),
            te_fallback=te_fallback,
            stale_links=tuple(stale),
            fault_capacity_loss_gbps=fault_loss,
            ber_violations=violations,
        )
