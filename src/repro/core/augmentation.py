"""Algorithm 1: augmenting the IP topology with fake upgrade links.

For every physical link whose SNR supports more than its configured
capacity (``U[e] > 0``), a *fake* parallel link is added carrying the
headroom and priced with the upgrade penalty ``P[e]``.  An unmodified
TE algorithm run on the augmented graph then trades off extra capacity
against disruption cost; flow landing on a fake link *is* the decision
to upgrade its physical twin (read back by :mod:`repro.core.translation`).

Two granularities are supported:

* ``per_step=False`` — one fake link with the full headroom, exactly
  Algorithm 1's pseudocode;
* ``per_step=True`` — one fake link per modulation-ladder rung above
  the current capacity, each sized as the increment to that rung and
  priced cumulatively.  This models the discrete rate ladder: a flow
  using 40 Gbps of headroom implies upgrading only as far as the rung
  that provides it.

Capacity *reductions* (SNR dropped) are handled per Section 4.2 by
removing fake links — and, when the SNR no longer sustains even the
configured rate, shrinking the real link, "the same set of operations
as a real edge removal" from the TE controller's perspective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.penalties import PenaltyPolicy, ZeroPenalty
from repro.net.topology import Link, Topology
from repro.optics.modulation import ModulationTable


@dataclass(frozen=True)
class AugmentedTopology:
    """The output of Algorithm 1: G' plus the fake-to-real mapping."""

    topology: Topology
    fake_to_real: Mapping[str, str]
    #: headroom used to build each fake link, Gbps
    fake_capacity: Mapping[str, float] = field(default_factory=dict)

    @property
    def n_fake_links(self) -> int:
        return len(self.fake_to_real)

    def fakes_of(self, real_link_id: str) -> list[str]:
        return [f for f, r in self.fake_to_real.items() if r == real_link_id]


def augment_topology(
    topology: Topology,
    *,
    penalty_policy: PenaltyPolicy | None = None,
    current_traffic: Mapping[str, float] | None = None,
    per_step: bool = False,
    table: ModulationTable | None = None,
    uniform_weights: bool = False,
) -> AugmentedTopology:
    """Build G' from G (Algorithm 1).

    Args:
        topology: the physical topology; each link's ``headroom_gbps``
            is the ``U`` matrix entry (0 = not upgradable).
        penalty_policy: prices each fake link (default: zero penalty).
        current_traffic: per-link traffic (Gbps) fed to the penalty
            policy; missing links count as idle.
        per_step: one fake link per ladder rung instead of one total
            (requires ``table``).
        table: modulation ladder for per-step augmentation.
        uniform_weights: set every link weight (real and fake) to 1 —
            the Figure-7c "short paths at all costs" configuration.

    The input topology is not modified.
    """
    if per_step and table is None:
        raise ValueError("per_step augmentation needs a modulation table")
    policy = penalty_policy if penalty_policy is not None else ZeroPenalty()
    traffic = current_traffic or {}

    augmented = topology.copy(f"{topology.name}-augmented")
    fake_to_real: dict[str, str] = {}
    fake_capacity: dict[str, float] = {}

    if uniform_weights:
        for link in list(augmented.links):
            augmented.replace_link(link.link_id, weight=1.0)

    for link in topology.real_links():
        if link.headroom_gbps <= 0:
            continue
        penalty = policy(link, float(traffic.get(link.link_id, 0.0)))
        if penalty < 0:
            raise ValueError(
                f"penalty policy returned {penalty} for {link.link_id}"
            )
        weight = 1.0 if uniform_weights else link.weight
        if per_step:
            _add_step_fakes(
                augmented, link, penalty, weight, table, fake_to_real, fake_capacity
            )
        else:
            fake = augmented.add_link(
                link.src,
                link.dst,
                link.headroom_gbps,
                penalty=penalty,
                weight=weight,
                link_id=f"{link.link_id}+fake",
                is_fake=True,
                shadow_of=link.link_id,
            )
            fake_to_real[fake.link_id] = link.link_id
            fake_capacity[fake.link_id] = link.headroom_gbps

    return AugmentedTopology(
        topology=augmented,
        fake_to_real=fake_to_real,
        fake_capacity=fake_capacity,
    )


def _add_step_fakes(
    augmented: Topology,
    link: Link,
    penalty: float,
    weight: float,
    table: ModulationTable,
    fake_to_real: dict[str, str],
    fake_capacity: dict[str, float],
) -> None:
    """One fake link per feasible ladder rung above the current rate.

    Rung ``r`` gets capacity ``r - previous_rung`` so the *sum* of fake
    capacities equals the headroom, and using all of them means
    upgrading to the top feasible rung.  Penalties are charged in full
    on the first step and nothing extra afterwards: one reconfiguration
    reaches any rung.
    """
    feasible_cap = link.capacity_gbps + link.headroom_gbps
    previous = link.capacity_gbps
    first = True
    for fmt in table:
        if fmt.capacity_gbps <= link.capacity_gbps:
            continue
        if fmt.capacity_gbps > feasible_cap + 1e-9:
            break
        increment = fmt.capacity_gbps - previous
        if increment <= 0:
            continue
        fake = augmented.add_link(
            link.src,
            link.dst,
            increment,
            penalty=penalty if first else 0.0,
            weight=weight,
            link_id=f"{link.link_id}+fake@{fmt.capacity_gbps:g}",
            is_fake=True,
            shadow_of=link.link_id,
        )
        fake_to_real[fake.link_id] = link.link_id
        fake_capacity[fake.link_id] = increment
        previous = fmt.capacity_gbps
        first = False


def drop_infeasible_fake_links(
    augmented: AugmentedTopology,
    feasible_capacity: Mapping[str, float],
) -> AugmentedTopology:
    """Remove fake links whose headroom the SNR no longer supports.

    ``feasible_capacity`` maps real link ids to the capacity their
    current SNR sustains.  Any fake link that would push the physical
    link beyond that is deleted — which, per Section 4.2, triggers the
    same TE reaction as a real edge removal.  Real links above their
    feasible capacity are shrunk (the "link flap" replacing a failure).
    """
    topo = augmented.topology.copy()
    fake_to_real = dict(augmented.fake_to_real)
    fake_capacity = dict(augmented.fake_capacity)

    committed: dict[str, float] = {}
    for fake_id in sorted(fake_to_real):
        real_id = fake_to_real[fake_id]
        if real_id not in feasible_capacity:
            continue
        real = topo.link(real_id)
        used = committed.get(real_id, real.capacity_gbps)
        extra = fake_capacity.get(fake_id, topo.link(fake_id).capacity_gbps)
        if used + extra > feasible_capacity[real_id] + 1e-9:
            topo.remove_link(fake_id)
            del fake_to_real[fake_id]
            fake_capacity.pop(fake_id, None)
        else:
            committed[real_id] = used + extra

    for real_id, feasible in feasible_capacity.items():
        if real_id not in topo:
            continue
        real = topo.link(real_id)
        if real.is_fake:
            continue
        if feasible <= 0:
            topo.remove_link(real_id)
            for fid in [f for f, r in fake_to_real.items() if r == real_id]:
                if fid in topo:
                    topo.remove_link(fid)
                del fake_to_real[fid]
                fake_capacity.pop(fid, None)
        elif feasible < real.capacity_gbps - 1e-9:
            topo.replace_link(real_id, capacity_gbps=feasible)

    return AugmentedTopology(
        topology=topo, fake_to_real=fake_to_real, fake_capacity=fake_capacity
    )
