"""Scheduling capacity changes: never darken a whole shared-risk group.

Translating a TE round can yield many upgrades at once.  Executing
them all simultaneously is tempting (one outage window) but reckless:
if several of them ride the same fiber cable, reconfiguring them
together takes the entire cable's IP capacity away at once — precisely
the correlated failure mode Section 2 documents.

:func:`schedule_reconfigurations` orders changes into batches such that

* no batch touches two links of the same SRLG (the cable always keeps
  its other wavelengths up), and
* batches respect a size cap (operators bound concurrent maintenance).

Greedy graph colouring over the conflict graph keeps it simple and
near-optimal for the sparse conflicts real plants have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.translation import LinkUpgrade
from repro.net.srlg import SrlgMap


@dataclass(frozen=True)
class ReconfigurationBatch:
    """Changes safe to execute concurrently."""

    upgrades: tuple[LinkUpgrade, ...]

    @property
    def link_ids(self) -> tuple[str, ...]:
        return tuple(u.link_id for u in self.upgrades)

    def __len__(self) -> int:
        return len(self.upgrades)


@dataclass(frozen=True)
class ReconfigurationSchedule:
    """The ordered batches plus summary accounting."""

    batches: tuple[ReconfigurationBatch, ...]

    @property
    def n_batches(self) -> int:
        return len(self.batches)

    @property
    def n_changes(self) -> int:
        return sum(len(b) for b in self.batches)

    def estimated_wallclock_s(self, per_change_downtime_s: float) -> float:
        """Serial-batch wall clock: batches run one after another,
        changes inside a batch in parallel."""
        if per_change_downtime_s < 0:
            raise ValueError("downtime must be non-negative")
        return self.n_batches * per_change_downtime_s

    def as_events(
        self, *, start_s: float = 0.0, per_change_downtime_s: float = 0.0
    ) -> tuple["Any", ...]:
        """The schedule as ``reconfig.batch`` engine events.

        Batches land on the timeline back to back: batch *i* starts
        once batch *i-1*'s (parallel) changes have finished, i.e. at
        ``start_s + i * per_change_downtime_s``.  Payload is the
        ``(batch_index, batch)`` pair.  Feed the result to
        :meth:`repro.engine.Engine.schedule` or wrap it in a source to
        meter maintenance windows alongside the rest of a scenario.
        """
        from repro.engine.kernel import Event

        if per_change_downtime_s < 0:
            raise ValueError("downtime must be non-negative")
        return tuple(
            Event(
                start_s + index * per_change_downtime_s,
                "reconfig.batch",
                (index, batch),
            )
            for index, batch in enumerate(self.batches)
        )


def schedule_reconfigurations(
    upgrades: Sequence[LinkUpgrade],
    srlgs: SrlgMap,
    *,
    max_batch_size: int = 8,
) -> ReconfigurationSchedule:
    """Batch ``upgrades`` so no SRLG loses two wavelengths at once.

    Args:
        upgrades: the capacity changes of one TE round.
        srlgs: cable membership of each link; links absent from the map
            conflict with nothing.
        max_batch_size: upper bound on concurrent changes.

    Changes are considered in descending disrupted-traffic order, so
    the heaviest reconfigurations land in the earliest batches (they
    are the ones operators most want finished first).
    """
    if max_batch_size <= 0:
        raise ValueError("max_batch_size must be positive")
    ordered = sorted(
        upgrades, key=lambda u: u.disrupted_traffic_gbps, reverse=True
    )
    batches: list[list[LinkUpgrade]] = []
    batch_groups: list[set[str]] = []

    for upgrade in ordered:
        groups = set(srlgs.cables_of(upgrade.link_id))
        placed = False
        for batch, used_groups in zip(batches, batch_groups):
            if len(batch) >= max_batch_size:
                continue
            if groups & used_groups:
                continue
            batch.append(upgrade)
            used_groups |= groups
            placed = True
            break
        if not placed:
            batches.append([upgrade])
            batch_groups.append(set(groups))

    return ReconfigurationSchedule(
        batches=tuple(ReconfigurationBatch(tuple(b)) for b in batches)
    )
