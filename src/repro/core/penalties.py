"""Penalty functions for fake (upgrade) links.

The penalty ``P[e]`` of Algorithm 1 prices the disruption of changing
link ``e``'s capacity: today's BVTs take the link down for ~68 seconds
(Section 3.1), so any traffic on it is hit.  Section 4.2 lists the
knobs: charge the current traffic, weight by disruption duration or by
the priority of the traffic, or set costs arbitrarily — "the TE
operators are free to set these costs to be as conservative or
aggressive as they desire".

A penalty policy maps a physical link (plus the traffic currently on
it) to the penalty of its fake twin.
"""

from __future__ import annotations

from typing import Callable, Mapping, Protocol

from repro.net.topology import Link

#: current traffic per link id, Gbps (from the previous TE round)
TrafficMap = Mapping[str, float]


class PenaltyPolicy(Protocol):
    """Callable assigning the upgrade penalty of one physical link."""

    def __call__(self, link: Link, current_traffic_gbps: float) -> float: ...


class ZeroPenalty:
    """No penalty: upgrades are free (the pure-headroom view).

    Useful as the optimistic bound and for hitless hardware (the 35 ms
    efficient path makes disruption nearly free).
    """

    def __call__(self, link: Link, current_traffic_gbps: float) -> float:
        return 0.0


class ConstantPenalty:
    """A fixed penalty per upgrade, like the example of Section 4.1
    ("the cost of changing the modulation set at 100")."""

    def __init__(self, value: float):
        if value < 0:
            raise ValueError("penalty must be non-negative")
        self.value = value

    def __call__(self, link: Link, current_traffic_gbps: float) -> float:
        return self.value


class TrafficDisruptionPenalty:
    """The paper's suggested default: penalty = traffic on the link now.

    Upgrading an idle wavelength is free; upgrading a loaded one costs
    in proportion to the flow that would be hit by the reconfiguration
    outage.  ``scale`` converts Gbps of disrupted traffic into penalty
    units (e.g. expected seconds of downtime per change).
    """

    def __init__(self, *, scale: float = 1.0, floor: float = 0.0):
        if scale < 0 or floor < 0:
            raise ValueError("scale and floor must be non-negative")
        self.scale = scale
        self.floor = floor

    def __call__(self, link: Link, current_traffic_gbps: float) -> float:
        if current_traffic_gbps < 0:
            raise ValueError("current traffic must be non-negative")
        return max(self.scale * current_traffic_gbps, self.floor)


class PriorityWeightedPenalty:
    """Disruption cost weighted by the priority mix riding the link.

    Section 4.2: "adjusting the penalty according to the traffic
    priority class".  The caller provides a function from link id to a
    weight (e.g. 10x for links carrying interactive traffic); the base
    policy prices the raw disruption.
    """

    def __init__(
        self,
        base: PenaltyPolicy,
        weight_of: Callable[[str], float],
    ):
        self.base = base
        self.weight_of = weight_of

    def __call__(self, link: Link, current_traffic_gbps: float) -> float:
        weight = self.weight_of(link.link_id)
        if weight < 0:
            raise ValueError("priority weight must be non-negative")
        return weight * self.base(link, current_traffic_gbps)
