"""Capacity planning: how long until the network runs out.

The budget meeting version of the paper's pitch: traffic grows X% per
quarter; the static network exhausts (cannot fully serve the matrix)
after some number of quarters, at which point new wavelengths must be
bought.  Re-modulating the installed base to its SNR-feasible rates
pushes that date out — the deferral :mod:`repro.sim.economics` prices.

Exhaustion is measured with the max-concurrent-flow LP: the network is
exhausted once the common satisfaction fraction drops below a target
(100% by default — some operators plan to 95%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.augmentation import augment_topology
from repro.net.demands import Demand, scale_demands
from repro.net.topology import Topology
from repro.te.lp import MultiCommodityLp


@dataclass(frozen=True)
class ExhaustionForecast:
    """When a network stops fully serving the growing matrix."""

    quarters_until_exhaustion: int
    growth_per_quarter: float
    satisfaction_at_exhaustion: float
    #: satisfaction fraction per quarter, starting at quarter 0
    trajectory: tuple[float, ...]

    @property
    def years_until_exhaustion(self) -> float:
        return self.quarters_until_exhaustion / 4.0


def _satisfaction(topology: Topology, demands: Sequence[Demand]) -> float:
    outcome = MultiCommodityLp(topology, demands).max_concurrent_flow(
        cap_at_one=True
    )
    return float(outcome.concurrency if outcome.concurrency is not None else 0.0)


def forecast_exhaustion(
    topology: Topology,
    demands: Sequence[Demand],
    *,
    growth_per_quarter: float = 0.10,
    satisfaction_target: float = 1.0,
    max_quarters: int = 40,
    dynamic: bool = False,
) -> ExhaustionForecast:
    """Quarters until the matrix can no longer be fully served.

    Args:
        topology: the network; with ``dynamic=True`` its per-link
            ``headroom_gbps`` is made available through Algorithm-1
            augmentation before solving.
        demands: the quarter-0 traffic matrix (must be fully servable,
            or the forecast is zero quarters).
        growth_per_quarter: compound traffic growth (0.10 = 10%).
        satisfaction_target: the satisfaction fraction counted as
            "still fine" (1.0 = every byte served).
        max_quarters: forecast horizon.
        dynamic: plan on the SNR-adaptive network instead of the static
            one.
    """
    if growth_per_quarter <= 0:
        raise ValueError("growth must be positive")
    if not 0.0 < satisfaction_target <= 1.0:
        raise ValueError("satisfaction target must be in (0, 1]")
    if max_quarters <= 0:
        raise ValueError("horizon must be positive")

    working = (
        augment_topology(topology).topology if dynamic else topology
    )
    trajectory = []
    exhausted_at = max_quarters
    for quarter in range(max_quarters + 1):
        grown = scale_demands(demands, (1.0 + growth_per_quarter) ** quarter)
        satisfaction = _satisfaction(working, grown)
        trajectory.append(satisfaction)
        if satisfaction < satisfaction_target - 1e-9:
            exhausted_at = quarter
            break
    return ExhaustionForecast(
        quarters_until_exhaustion=exhausted_at,
        growth_per_quarter=growth_per_quarter,
        satisfaction_at_exhaustion=trajectory[-1],
        trajectory=tuple(trajectory),
    )


def deferral_quarters(
    topology: Topology,
    demands: Sequence[Demand],
    *,
    growth_per_quarter: float = 0.10,
    satisfaction_target: float = 1.0,
    max_quarters: int = 40,
) -> tuple[ExhaustionForecast, ExhaustionForecast, int]:
    """Static and dynamic forecasts plus the deferral between them."""
    static = forecast_exhaustion(
        topology,
        demands,
        growth_per_quarter=growth_per_quarter,
        satisfaction_target=satisfaction_target,
        max_quarters=max_quarters,
    )
    dynamic = forecast_exhaustion(
        topology,
        demands,
        growth_per_quarter=growth_per_quarter,
        satisfaction_target=satisfaction_target,
        max_quarters=max_quarters,
        dynamic=True,
    )
    return (
        static,
        dynamic,
        dynamic.quarters_until_exhaustion - static.quarters_until_exhaustion,
    )
