"""Consistent network updates around capacity changes (Section 4.2).

Two tools the paper references when a flow "can be temporarily
rerouted, but will not suffer from disruption":

* **drain plans** — "after identifying the links to be updated E_U, we
  remove E_U from the topology and invoke the TE controller again":
  compute an intermediate TE state that carries traffic while the
  upgraded links are dark (:func:`drain_plan`);
* **congestion-free migration** — the SWAN-style staged transition
  between two flow states: every intermediate stage is a convex
  combination of the endpoints, hence feasible (both endpoints respect
  capacities and the constraints are linear), and per-stage flow deltas
  are bounded so rule churn per stage is controlled
  (:func:`migration_stages`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.net.demands import Demand
from repro.net.topology import Topology
from repro.te.solution import FlowAssignment, TeSolution

TeAlgorithm = Callable[[Topology, Sequence[Demand]], TeSolution]


@dataclass(frozen=True)
class DrainPlan:
    """The intermediate state that frees the links being reconfigured."""

    drained_link_ids: tuple[str, ...]
    #: TE solution valid while the drained links are out of service
    interim_solution: TeSolution
    #: throughput lost while drained (vs. the pre-drain solution)
    throughput_sacrifice_gbps: float


def drain_plan(
    topology: Topology,
    demands: Sequence[Demand],
    links_to_update: Iterable[str],
    te_algorithm: TeAlgorithm,
    *,
    baseline: TeSolution | None = None,
) -> DrainPlan:
    """Re-run the TE with the to-be-updated links removed.

    The interim solution carries no traffic on any link in
    ``links_to_update``, so their BVTs can reconfigure without hitting
    flows — the upgrade becomes hitless at the IP layer even with
    slow (standard-procedure) hardware.
    """
    drained = tuple(links_to_update)
    if not drained:
        raise ValueError("nothing to drain")
    working = topology.copy(f"{topology.name}-drain")
    for link_id in drained:
        working.remove_link(link_id)  # raises on unknown id

    interim = te_algorithm(working, demands)
    before = (
        baseline.total_allocated_gbps
        if baseline is not None
        else te_algorithm(topology, demands).total_allocated_gbps
    )
    return DrainPlan(
        drained_link_ids=drained,
        interim_solution=interim,
        throughput_sacrifice_gbps=max(before - interim.total_allocated_gbps, 0.0),
    )


@dataclass(frozen=True)
class MigrationStage:
    """One stage of a staged transition."""

    fraction: float  # position along current -> target, in (0, 1]
    solution: TeSolution


def migration_stages(
    current: TeSolution,
    target: TeSolution,
    *,
    n_stages: int = 4,
) -> list[MigrationStage]:
    """Stage the move from ``current`` to ``target`` flow state.

    Stage ``i`` carries the convex combination
    ``(1 - f_i) * current + f_i * target`` with ``f_i = i / n_stages``.
    Because capacity and conservation constraints are linear, every
    stage is feasible whenever both endpoints are — the classic
    congestion-free-update argument.  Demands must match pairwise.

    Raises :class:`ValueError` when the endpoint solutions belong to
    different topologies or demand sets.
    """
    if n_stages <= 0:
        raise ValueError("need at least one stage")
    if len(current.assignments) != len(target.assignments):
        raise ValueError("solutions cover different demand sets")
    for a, b in zip(current.assignments, target.assignments):
        if a.demand.pair != b.demand.pair:
            raise ValueError(
                f"demand mismatch: {a.demand.pair} vs {b.demand.pair}"
            )
    current_ids = {l.link_id for l in current.topology.links}
    target_ids = {l.link_id for l in target.topology.links}
    if not target_ids <= current_ids and not current_ids <= target_ids:
        raise ValueError("solutions belong to unrelated topologies")
    # interpolate on the richer topology so every referenced link exists
    base = (
        current.topology if target_ids <= current_ids else target.topology
    )

    stages = []
    for i in range(1, n_stages + 1):
        f = i / n_stages
        mixed = []
        for a, b in zip(current.assignments, target.assignments):
            flows: dict[str, float] = {}
            for link_id, flow in a.edge_flows.items():
                flows[link_id] = flows.get(link_id, 0.0) + (1.0 - f) * flow
            for link_id, flow in b.edge_flows.items():
                flows[link_id] = flows.get(link_id, 0.0) + f * flow
            mixed.append(
                FlowAssignment(
                    demand=a.demand,
                    allocated_gbps=(1.0 - f) * a.allocated_gbps
                    + f * b.allocated_gbps,
                    edge_flows={k: v for k, v in flows.items() if v > 1e-9},
                )
            )
        stages.append(MigrationStage(fraction=f, solution=TeSolution(base, mixed)))
    return stages


def max_stage_churn_gbps(stages: Sequence[MigrationStage]) -> float:
    """Largest per-link rate change between consecutive stages.

    Operators bound this to limit per-step rule updates; halving it
    requires doubling ``n_stages``.
    """
    if not stages:
        raise ValueError("no stages")
    worst = 0.0
    previous = stages[0].solution
    for stage in stages[1:]:
        link_ids = set(previous._link_flow) | set(stage.solution._link_flow)
        for link_id in link_ids:
            delta = abs(
                stage.solution.link_flow(link_id) - previous.link_flow(link_id)
            )
            worst = max(worst, delta)
        previous = stage.solution
    return worst
