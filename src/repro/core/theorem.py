"""Executable Theorem 1.

    Let G be a topology consisting of links with variable capacities,
    with penalty function P.  There is an augmented topology G' such
    that solving the min-cost max-flow problem on G' is equivalent to
    solving max-flow on G.

"Max-flow on G" means: on the variable-capacity graph where every link
may run anywhere up to its SNR-feasible capacity, the maximum volume
routable between the endpoints.  The theorem says Algorithm 1's G'
preserves that value under min-cost max-flow, while the cost term makes
the solution upgrade as little as possible.

:func:`check_theorem1` computes both sides independently — max-flow on
the fully-upgraded G via networkx, min-cost max-flow on G' — and
reports whether they agree.  The test suite runs it over randomised
topologies (hypothesis), which is as close to a machine-checked proof
of the construction as a reproduction gets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.augmentation import AugmentedTopology, augment_topology
from repro.core.penalties import PenaltyPolicy
from repro.net.topology import Topology
from repro.te.maxflow import max_flow, min_cost_max_flow


@dataclass(frozen=True)
class Theorem1Report:
    """Both sides of the equivalence, plus the verdict."""

    src: str
    dst: str
    maxflow_on_full_g: float
    mcmf_on_augmented: float
    mcmf_penalty: float
    maxflow_on_static_g: float
    tolerance: float

    @property
    def holds(self) -> bool:
        return (
            abs(self.maxflow_on_full_g - self.mcmf_on_augmented)
            <= self.tolerance
        )

    @property
    def upgrade_gain_gbps(self) -> float:
        """Throughput the augmentation unlocked over the static graph."""
        return self.mcmf_on_augmented - self.maxflow_on_static_g


def fully_upgraded(topology: Topology) -> Topology:
    """G at full feasible capacity: every link raised by its headroom."""
    out = topology.copy(f"{topology.name}-full")
    for link in list(out.links):
        if link.headroom_gbps > 0:
            out.replace_link(
                link.link_id,
                capacity_gbps=link.capacity_gbps + link.headroom_gbps,
                headroom_gbps=0.0,
            )
    return out


def check_theorem1(
    topology: Topology,
    src: str,
    dst: str,
    *,
    penalty_policy: PenaltyPolicy | None = None,
    augmented: AugmentedTopology | None = None,
    tolerance: float = 1e-6,
) -> Theorem1Report:
    """Verify the Theorem-1 equivalence for one commodity.

    Args:
        topology: variable-capacity graph G (headroom on links).
        src / dst: the flow endpoints.
        penalty_policy: prices the fake links of G' (any non-negative
            penalties — the theorem holds regardless, because min-cost
            max-flow maximises flow *first*).
        augmented: reuse an existing G' instead of re-augmenting.
        tolerance: numerical slack for the equality.
    """
    aug = (
        augmented
        if augmented is not None
        else augment_topology(topology, penalty_policy=penalty_policy)
    )
    lhs = max_flow(fully_upgraded(topology), src, dst)
    rhs = min_cost_max_flow(aug.topology, src, dst)
    static = max_flow(topology, src, dst)
    return Theorem1Report(
        src=src,
        dst=dst,
        maxflow_on_full_g=lhs.value_gbps,
        mcmf_on_augmented=rhs.value_gbps,
        mcmf_penalty=rhs.penalty_cost,
        maxflow_on_static_g=static.value_gbps,
        tolerance=tolerance,
    )
