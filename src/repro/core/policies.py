"""Run, walk, crawl: the capacity-adaptation spectrum of the title.

A policy decides the *target* capacity of a link given what its SNR
currently supports.  The three named operating points:

* **run** — track the SNR-feasible capacity aggressively: upgrade the
  moment headroom appears, downgrade the moment it vanishes.  Maximum
  throughput, maximum churn.
* **walk** — adapt with hysteresis: upgrade only when the SNR clears
  the target rung's threshold by a safety margin (so noise cannot flap
  the link back), downgrade when required.  The operating point the
  paper's deployment story suggests.
* **crawl** — today's network: never upgrade; on SNR loss, fall to the
  highest still-feasible rung rather than failing outright.  The
  minimal change that still converts failures into flaps (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.optics.modulation import DEFAULT_MODULATIONS, ModulationTable


@dataclass(frozen=True)
class AdaptationPolicy:
    """Maps (current capacity, SNR) to a target capacity on the ladder.

    Attributes:
        name: display name.
        allow_upgrades: can the policy raise capacity at all?
        upgrade_margin_db: extra SNR (beyond the rung's threshold) the
            link must have before the policy upgrades *to* that rung.
            0 = greedy; ~1-2 dB = hysteresis against noise flapping.
        table: the modulation ladder.
    """

    name: str
    allow_upgrades: bool
    upgrade_margin_db: float = 0.0
    table: ModulationTable = DEFAULT_MODULATIONS

    def __post_init__(self) -> None:
        if self.upgrade_margin_db < 0:
            raise ValueError("upgrade margin must be non-negative")

    def target_capacity_gbps(
        self, current_capacity_gbps: float, snr_db: float
    ) -> float:
        """The capacity this policy wants the link at, given its SNR.

        Downgrades are never optional: if the SNR cannot sustain the
        current rate, every policy falls to the fastest feasible rung
        (possibly 0 = link down) — that is the availability story.
        Upgrades respect ``allow_upgrades`` and the hysteresis margin.
        """
        feasible = self.table.feasible_capacity(snr_db)
        if feasible <= current_capacity_gbps:
            return feasible  # forced downgrade (or no-op when equal)
        if not self.allow_upgrades:
            return current_capacity_gbps
        # pick the fastest rung whose threshold clears SNR - margin
        guarded = self.table.feasible_capacity(snr_db - self.upgrade_margin_db)
        return max(guarded, current_capacity_gbps)

    def headroom_gbps(self, current_capacity_gbps: float, snr_db: float) -> float:
        """Upgrade headroom this policy exposes to Algorithm 1 (the U entry)."""
        target = self.target_capacity_gbps(current_capacity_gbps, snr_db)
        return max(target - current_capacity_gbps, 0.0)


def run_policy(table: ModulationTable = DEFAULT_MODULATIONS) -> AdaptationPolicy:
    """Aggressive tracking: any feasible headroom is offered to TE."""
    return AdaptationPolicy("run", allow_upgrades=True, upgrade_margin_db=0.0,
                            table=table)


def walk_policy(
    margin_db: float = 1.5, table: ModulationTable = DEFAULT_MODULATIONS
) -> AdaptationPolicy:
    """Hysteretic adaptation: upgrades need ``margin_db`` of safety."""
    return AdaptationPolicy(
        "walk", allow_upgrades=True, upgrade_margin_db=margin_db, table=table
    )


def crawl_policy(table: ModulationTable = DEFAULT_MODULATIONS) -> AdaptationPolicy:
    """No upgrades; downgrades replace failures (today's network + flaps)."""
    return AdaptationPolicy("crawl", allow_upgrades=False, table=table)
