"""The Figure-8 gadget for unsplittable flows.

Plain augmentation represents an upgradable 100 Gbps link as two
parallel 100 Gbps links (real + fake) — fine for splittable TE, but an
*unsplittable* 200 Gbps flow cannot ride two parallel 100s.  Figure 8
fixes this by subdividing the link with intermediate vertices so a
single path of the full upgraded rate exists while total capacity stays
physically correct:

``u --(base: c, penalty 0)-------> m --(c+h, penalty 0)--> v``
``u --(upgraded: c+h, penalty P)-> m``

The second hop's capacity ``c + h`` enforces the physical limit (the
two first-hop edges cannot both be saturated), and the *upgraded*
first-hop edge provides a single ``c + h`` path.  The paper's figure
draws two intermediate vertices (A', B'); one suffices and is what we
build — the second would only split the tail edge in two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.penalties import PenaltyPolicy, ZeroPenalty
from repro.net.topology import Topology


@dataclass(frozen=True)
class GadgetTopology:
    """An augmented topology where selected links use the Figure-8 form."""

    topology: Topology
    #: upgraded-edge id -> original physical link id
    upgrade_to_real: Mapping[str, str]
    #: intermediate node added for each gadgeted link
    mid_nodes: Mapping[str, str]


def apply_unsplittable_gadget(
    topology: Topology,
    link_ids: Iterable[str] | None = None,
    *,
    penalty_policy: PenaltyPolicy | None = None,
    current_traffic: Mapping[str, float] | None = None,
) -> GadgetTopology:
    """Rebuild ``topology`` with Figure-8 gadgets on upgradable links.

    Args:
        topology: physical topology; ``headroom_gbps`` marks upgradable
            links.
        link_ids: which links to gadget (default: every link with
            headroom).  Links without headroom are never touched.
        penalty_policy / current_traffic: as in
            :func:`repro.core.augmentation.augment_topology`.

    The input is not modified.  Unsplittable routing (e.g. CSPF) on the
    result can push a single full-rate path through an upgraded link,
    which is impossible on the parallel-link augmentation.
    """
    policy = penalty_policy if penalty_policy is not None else ZeroPenalty()
    traffic = current_traffic or {}
    targets = set(link_ids) if link_ids is not None else {
        l.link_id for l in topology.real_links() if l.headroom_gbps > 0
    }
    for link_id in targets:
        link = topology.link(link_id)  # raises on unknown id
        if link.is_fake:
            raise ValueError(f"cannot gadget fake link {link_id}")
        if link.headroom_gbps <= 0:
            raise ValueError(f"link {link_id} has no headroom to gadget")

    out = Topology(f"{topology.name}-gadget")
    upgrade_to_real: dict[str, str] = {}
    mid_nodes: dict[str, str] = {}
    for node in topology.nodes:
        out.add_node(node)

    for link in topology.links:
        if link.link_id not in targets:
            out.add_link(
                link.src,
                link.dst,
                link.capacity_gbps,
                headroom_gbps=link.headroom_gbps,
                penalty=link.penalty,
                weight=link.weight,
                link_id=link.link_id,
                is_fake=link.is_fake,
                shadow_of=link.shadow_of,
            )
            continue

        mid = f"{link.link_id}@mid"
        full = link.capacity_gbps + link.headroom_gbps
        penalty = policy(link, float(traffic.get(link.link_id, 0.0)))
        out.add_node(mid)
        # base first hop: current capacity, free
        out.add_link(
            link.src,
            mid,
            link.capacity_gbps,
            weight=link.weight,
            link_id=f"{link.link_id}@base",
        )
        # upgraded first hop: full rate, pays the upgrade penalty
        upgraded = out.add_link(
            link.src,
            mid,
            full,
            penalty=penalty,
            weight=link.weight,
            link_id=f"{link.link_id}@upgraded",
            is_fake=True,
            shadow_of=link.link_id,
        )
        # tail: enforces the physical total and completes the path
        out.add_link(
            mid,
            link.dst,
            full,
            weight=0.0,
            link_id=f"{link.link_id}@tail",
        )
        upgrade_to_real[upgraded.link_id] = link.link_id
        mid_nodes[link.link_id] = mid

    return GadgetTopology(
        topology=out, upgrade_to_real=upgrade_to_real, mid_nodes=mid_nodes
    )
