"""Greedy CSPF baseline (MPLS-TE auto-bandwidth style).

The distributed-WAN strawman the centralised controllers are compared
against: demands are admitted one at a time, each routed *unsplit* on
the shortest path that still has room for the whole demand.  If no path
fits the full volume, the demand gets the best partial placement on the
single path with the most residual room.

Order matters (as it does for real RSVP-TE reservations): demands are
processed by priority, then by descending volume, which is the common
operational heuristic.
"""

from __future__ import annotations

from typing import Sequence

from repro.net.demands import Demand
from repro.net.paths import k_shortest_paths
from repro.net.topology import Topology
from repro.te.solution import EPSILON, FlowAssignment, TeSolution


def cspf_allocate(
    topology: Topology,
    demands: Sequence[Demand],
    *,
    k_candidates: int = 8,
) -> TeSolution:
    """Route each demand unsplit on the shortest path with room.

    Args:
        topology: (possibly augmented) network.
        demands: demands; processed priority-ascending, volume-descending.
        k_candidates: how many shortest paths to consider per demand
            before falling back to partial placement.
    """
    if not demands:
        raise ValueError("need at least one demand")
    if k_candidates <= 0:
        raise ValueError("k_candidates must be positive")

    residual = {l.link_id: l.capacity_gbps for l in topology.links}
    order = sorted(
        range(len(demands)),
        key=lambda i: (demands[i].priority, -demands[i].volume_gbps),
    )
    assignments: list[FlowAssignment | None] = [None] * len(demands)

    for i in order:
        demand = demands[i]
        paths = k_shortest_paths(
            topology, demand.src, demand.dst, k_candidates
        )
        flows: dict[str, float] = {}
        allocated = 0.0
        best_partial = None
        best_room = 0.0
        for path in paths:
            room = min(residual[l.link_id] for l in path.links)
            if room >= demand.volume_gbps - EPSILON:
                allocated = demand.volume_gbps
                for link in path.links:
                    residual[link.link_id] -= allocated
                    flows[link.link_id] = allocated
                break
            if room > best_room:
                best_room = room
                best_partial = path
        else:
            if best_partial is not None and best_room > EPSILON:
                allocated = best_room
                for link in best_partial.links:
                    residual[link.link_id] -= allocated
                    flows[link.link_id] = allocated
        assignments[i] = FlowAssignment(
            demand=demand, allocated_gbps=allocated, edge_flows=flows
        )

    return TeSolution(topology, [a for a in assignments if a is not None])
