"""Path-based multicommodity TE (the formulation SWAN/B4 deploy).

The edge-based LP of :mod:`repro.te.lp` is exact but has
``O(demands x links)`` variables.  Production controllers restrict each
demand to a small set of precomputed tunnels (k-shortest paths) and
solve over path variables instead — smaller, and the output is already
tunnels.  The price is optimality: with too few paths the optimum is
missed, which the DESIGN.md ablation quantifies.

On augmented topologies the k-shortest computation runs over the
link-expanded graph, so real and fake parallel links appear as distinct
tunnels — the abstraction keeps working with zero changes here too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.net.demands import Demand
from repro.net.paths import LinkPath, k_shortest_paths
from repro.net.topology import Topology
from repro.te.solution import EPSILON, FlowAssignment, TeSolution


@dataclass(frozen=True)
class PathLpOutcome:
    """A solved path LP: solution, objective, and the tunnels used."""

    solution: TeSolution
    objective_value: float
    #: tunnels per demand index, aligned with rates_per_path
    tunnels: tuple[tuple[LinkPath, ...], ...]


class PathBasedLp:
    """Path-formulation multicommodity LP over k-shortest tunnels."""

    def __init__(
        self,
        topology: Topology,
        demands: Sequence[Demand],
        *,
        k_paths: int = 4,
    ):
        if not demands:
            raise ValueError("need at least one demand")
        if k_paths <= 0:
            raise ValueError("k_paths must be positive")
        self.topology = topology
        self.demands = tuple(demands)
        self.k_paths = k_paths
        self.paths: list[list[LinkPath]] = [
            k_shortest_paths(topology, d.src, d.dst, k_paths)
            for d in self.demands
        ]
        # flat variable layout: one rate per (demand, path)
        self._offsets: list[int] = []
        total = 0
        for paths in self.paths:
            self._offsets.append(total)
            total += len(paths)
        self.n_vars = total

    def _var(self, k: int, p: int) -> int:
        return self._offsets[k] + p

    def _capacity_rows(self) -> tuple[sparse.coo_matrix, np.ndarray]:
        link_index = {l.link_id: i for i, l in enumerate(self.topology.links)}
        rows, cols, vals = [], [], []
        for k, paths in enumerate(self.paths):
            for p, path in enumerate(paths):
                for link in path.links:
                    rows.append(link_index[link.link_id])
                    cols.append(self._var(k, p))
                    vals.append(1.0)
        a_ub = sparse.coo_matrix(
            (vals, (rows, cols)), shape=(len(link_index), max(self.n_vars, 1))
        )
        b_ub = np.array([l.capacity_gbps for l in self.topology.links])
        return a_ub, b_ub

    def _demand_rows(self) -> tuple[sparse.coo_matrix, np.ndarray]:
        rows, cols, vals = [], [], []
        for k, paths in enumerate(self.paths):
            for p in range(len(paths)):
                rows.append(k)
                cols.append(self._var(k, p))
                vals.append(1.0)
        a_ub = sparse.coo_matrix(
            (vals, (rows, cols)),
            shape=(len(self.demands), max(self.n_vars, 1)),
        )
        b_ub = np.array([d.volume_gbps for d in self.demands])
        return a_ub, b_ub

    def _extract(self, x: np.ndarray) -> PathLpOutcome:
        assignments = []
        for k, (demand, paths) in enumerate(zip(self.demands, self.paths)):
            edge_flows: dict[str, float] = {}
            allocated = 0.0
            for p, path in enumerate(paths):
                rate = float(x[self._var(k, p)])
                if rate <= EPSILON:
                    continue
                allocated += rate
                for link in path.links:
                    edge_flows[link.link_id] = (
                        edge_flows.get(link.link_id, 0.0) + rate
                    )
            assignments.append(
                FlowAssignment(
                    demand=demand,
                    allocated_gbps=allocated,
                    edge_flows=edge_flows,
                )
            )
        solution = TeSolution(self.topology, assignments)
        return PathLpOutcome(
            solution=solution,
            objective_value=solution.total_allocated_gbps,
            tunnels=tuple(tuple(p) for p in self.paths),
        )

    def max_throughput(self, *, penalty_weight: float = 0.0) -> PathLpOutcome:
        """Maximise total allocated volume over the tunnel sets."""
        if self.n_vars == 0:
            return self._extract(np.zeros(0))
        cap_a, cap_b = self._capacity_rows()
        dem_a, dem_b = self._demand_rows()
        a_ub = sparse.vstack([cap_a, dem_a]).tocsr()
        b_ub = np.concatenate([cap_b, dem_b])
        c = np.full(self.n_vars, -1.0)
        if penalty_weight:
            for k, paths in enumerate(self.paths):
                for p, path in enumerate(paths):
                    c[self._var(k, p)] += penalty_weight * path.penalty
        result = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            bounds=[(0.0, None)] * self.n_vars,
            method="highs",
        )
        if not result.success:
            raise RuntimeError(f"path LP failed: {result.message}")
        return self._extract(result.x)

    def min_penalty_at_max_throughput(self) -> PathLpOutcome:
        """Two-phase: maximum throughput first, then least total penalty."""
        phase1 = self.max_throughput()
        t_star = phase1.objective_value
        if self.n_vars == 0:
            return phase1
        cap_a, cap_b = self._capacity_rows()
        dem_a, dem_b = self._demand_rows()
        floor = sparse.coo_matrix(
            (
                [-1.0] * self.n_vars,
                ([0] * self.n_vars, list(range(self.n_vars))),
            ),
            shape=(1, self.n_vars),
        )
        slack = max(1e-7 * max(t_star, 1.0), 1e-9)
        a_ub = sparse.vstack([cap_a, dem_a, floor]).tocsr()
        b_ub = np.concatenate([cap_b, dem_b, [-(t_star - slack)]])
        c = np.zeros(self.n_vars)
        for k, paths in enumerate(self.paths):
            for p, path in enumerate(paths):
                c[self._var(k, p)] = path.penalty + 1e-9 * len(path)
        result = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            bounds=[(0.0, None)] * self.n_vars,
            method="highs",
        )
        if not result.success:
            raise RuntimeError(f"path LP phase 2 failed: {result.message}")
        return self._extract(result.x)
