"""Single-commodity max flow and min-cost max-flow.

These run on the link-expanded simple digraph so parallel real/fake
links keep their identity, and use networkx's combinatorial algorithms —
an independent implementation path from the LP module, which the test
suite exploits as a cross-check (LP optimum == networkx optimum).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.net.demands import Demand
from repro.net.topology import Topology
from repro.te.solution import EPSILON, FlowAssignment, TeSolution

#: min-cost flow in networkx wants integer costs; penalties are scaled
#: by this factor and rounded, giving 1e-3 penalty resolution.
_COST_SCALE = 1000


@dataclass(frozen=True)
class SingleCommodityResult:
    """Outcome of a single-commodity flow computation."""

    value_gbps: float
    edge_flows: dict[str, float]
    penalty_cost: float

    def as_solution(self, topology: Topology, src: str, dst: str) -> TeSolution:
        demand = Demand(src, dst, self.value_gbps if self.value_gbps > 0 else 0.0)
        return TeSolution(
            topology,
            [
                FlowAssignment(
                    demand=demand,
                    allocated_gbps=self.value_gbps,
                    edge_flows=self.edge_flows,
                )
            ],
        )


def _collect_link_flows(topology: Topology, flow_dict: dict) -> dict[str, float]:
    """Map expanded-graph flows back onto link ids.

    In the expanded graph every link's flow crosses ``u -> ('link', id)``
    exactly once, so that edge's flow is the link's flow.
    """
    flows: dict[str, float] = {}
    for u, targets in flow_dict.items():
        if isinstance(u, tuple):
            continue  # mid nodes handled from the entering edge
        for v, f in targets.items():
            if isinstance(v, tuple) and v[0] == "link" and f > EPSILON:
                flows[v[1]] = flows.get(v[1], 0.0) + float(f)
    return flows


def max_flow(topology: Topology, src: str, dst: str) -> SingleCommodityResult:
    """Maximum ``src -> dst`` flow over the (possibly augmented) topology."""
    _check_endpoints(topology, src, dst)
    g = topology.to_link_expanded_digraph()
    value, flow_dict = nx.maximum_flow(g, src, dst, capacity="capacity")
    flows = _collect_link_flows(topology, flow_dict)
    penalty = sum(topology.link(i).penalty * f for i, f in flows.items())
    return SingleCommodityResult(
        value_gbps=float(value), edge_flows=flows, penalty_cost=penalty
    )


def min_cost_max_flow(topology: Topology, src: str, dst: str) -> SingleCommodityResult:
    """Among maximum ``src -> dst`` flows, the one of least total penalty.

    This is the exact object Theorem 1 reasons about: on an augmented
    topology the cheapest max flow avoids fake (penalised) links unless
    they buy extra throughput.
    """
    _check_endpoints(topology, src, dst)
    g = topology.to_link_expanded_digraph()
    # networkx max_flow_min_cost: integer weights strongly recommended
    for u, v, data in g.edges(data=True):
        data["weight"] = int(round(data.get("penalty", 0.0) * _COST_SCALE))
    flow_dict = nx.max_flow_min_cost(g, src, dst, capacity="capacity")
    flows = _collect_link_flows(topology, flow_dict)
    value = sum(
        f for i, f in flows.items() if topology.link(i).src == src
    ) - sum(f for i, f in flows.items() if topology.link(i).dst == src)
    penalty = sum(topology.link(i).penalty * f for i, f in flows.items())
    return SingleCommodityResult(
        value_gbps=float(value), edge_flows=flows, penalty_cost=penalty
    )


def _check_endpoints(topology: Topology, src: str, dst: str) -> None:
    for node in (src, dst):
        if not topology.has_node(node):
            raise KeyError(f"no node {node!r} in topology")
    if src == dst:
        raise ValueError("src and dst must differ")
