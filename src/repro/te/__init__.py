"""Traffic-engineering substrate.

These are the "existing TE algorithms" of the paper's Section 4 — the
consumers of the graph abstraction.  None of them knows anything about
SNR or dynamic capacities; they see a topology of capacitated links,
some of which happen to carry a penalty, and demands:

* :mod:`~repro.te.lp` — the edge-based multicommodity LP core
  (maximum throughput, two-phase min-penalty-at-max-throughput,
  max-concurrent-flow), solved with scipy's HiGHS backend;
* :mod:`~repro.te.incremental` — the round-to-round solve accelerator:
  structure reuse, exact solution memoization and batched what-if
  solves (bit-identical to fresh solves; see that module's docstring);
* :mod:`~repro.te.maxflow` — single-commodity max flow / min-cost
  max-flow on the link-expanded graph (networkx cross-check);
* :mod:`~repro.te.swan` — SWAN-style priority-class allocation;
* :mod:`~repro.te.b4` — B4-style max-min fair progressive filling;
* :mod:`~repro.te.cspf` — a greedy CSPF (MPLS-TE auto-bandwidth style)
  baseline that routes each demand unsplit;
* :mod:`~repro.te.solution` — the common solution/validation object.
"""

from repro.te.solution import FlowAssignment, TeSolution, TeSolverError, empty_solution
from repro.te.lp import MultiCommodityLp, LpOutcome
from repro.te.incremental import (
    CachedTeAlgorithm,
    TeSolveCache,
    batch_throughput,
    te_cache_enabled,
)
from repro.te.pathlp import PathBasedLp, PathLpOutcome
from repro.te.maxflow import max_flow, min_cost_max_flow, SingleCommodityResult
from repro.te.decompose import (
    Decomposition,
    PathFlow,
    decompose_assignment,
    decompose_solution,
)
from repro.te.churn import ChurnReport, cumulative_churn, solution_churn
from repro.te.swan import swan_allocate
from repro.te.b4 import b4_allocate
from repro.te.cspf import cspf_allocate

__all__ = [
    "FlowAssignment",
    "TeSolution",
    "TeSolverError",
    "empty_solution",
    "MultiCommodityLp",
    "LpOutcome",
    "CachedTeAlgorithm",
    "TeSolveCache",
    "batch_throughput",
    "te_cache_enabled",
    "PathBasedLp",
    "PathLpOutcome",
    "max_flow",
    "min_cost_max_flow",
    "SingleCommodityResult",
    "Decomposition",
    "PathFlow",
    "decompose_assignment",
    "decompose_solution",
    "ChurnReport",
    "cumulative_churn",
    "solution_churn",
    "swan_allocate",
    "b4_allocate",
    "cspf_allocate",
]
