"""SWAN-style priority-class traffic engineering.

SWAN (Hong et al., SIGCOMM 2013) allocates traffic in priority order:
interactive first, then elastic, then background.  Each class gets a
max-concurrent-flow allocation over the capacity left by the classes
above it — approximate max-min fairness across classes without starving
the low ones inside a class.

The implementation here is deliberately *unaware* of dynamic capacities:
it takes whatever topology it is given.  Handing it an augmented
topology (Section 4 of the paper) is what makes it capacity-adaptive —
with zero code changes, which is the paper's whole point.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.net.demands import Demand, demands_by_priority
from repro.net.topology import Topology
from repro.te.lp import MultiCommodityLp
from repro.te.solution import EPSILON, FlowAssignment, TeSolution


def swan_allocate(
    topology: Topology,
    demands: Sequence[Demand],
    *,
    penalty_weight: float = 0.0,
) -> TeSolution:
    """Allocate ``demands`` by priority class, SWAN style.

    Within each class the allocation maximises the common satisfaction
    fraction (max-concurrent-flow, capped at 1.0), then tops up with a
    throughput-maximising pass so capacity the fairness objective leaves
    stranded still gets used.  Residual capacities shrink between
    classes.

    ``penalty_weight`` is forwarded to the top-up pass — on an augmented
    topology it biases the allocation away from links whose use implies
    a capacity upgrade.
    """
    if not demands:
        raise ValueError("need at least one demand")
    working = topology.copy(f"{topology.name}-swan")
    assignments: list[FlowAssignment] = []

    for _, class_demands in demands_by_priority(list(demands)).items():
        lp = MultiCommodityLp(working, class_demands)
        fair = lp.max_concurrent_flow(cap_at_one=True)
        class_solution = fair.solution
        _consume_capacity(working, class_solution)
        if fair.concurrency is not None and fair.concurrency < 1.0 - EPSILON:
            # the fair share is a floor; top up with a throughput-
            # maximising pass over the residual so capacity the fairness
            # objective leaves stranded still gets used (SWAN's allocator
            # iterates similarly after its fairness step)
            residual_demands = [
                replace(
                    a.demand,
                    volume_gbps=max(
                        a.demand.volume_gbps - a.allocated_gbps, 0.0
                    ),
                )
                for a in class_solution.assignments
            ]
            if any(d.volume_gbps > EPSILON for d in residual_demands):
                topup = MultiCommodityLp(
                    working, residual_demands
                ).max_throughput(penalty_weight=penalty_weight).solution
                class_solution = _merge(topology, class_solution, topup)
                _consume_capacity(working, topup)
        assignments.extend(class_solution.assignments)

    return TeSolution(topology, assignments)


def _merge(
    topology: Topology, fair: TeSolution, topup: TeSolution
) -> TeSolution:
    """Sum the fair floor and the top-up, demand by demand."""
    merged = []
    for base, extra in zip(fair.assignments, topup.assignments):
        flows = dict(base.edge_flows)
        for link_id, flow in extra.edge_flows.items():
            flows[link_id] = flows.get(link_id, 0.0) + flow
        merged.append(
            FlowAssignment(
                demand=base.demand,
                allocated_gbps=base.allocated_gbps + extra.allocated_gbps,
                edge_flows=flows,
            )
        )
    return TeSolution(topology, merged)


def _consume_capacity(working: Topology, solution: TeSolution) -> None:
    """Shrink ``working`` capacities by the flow the class used."""
    for link in list(working.links):
        used = solution.link_flow(link.link_id)
        if used <= EPSILON:
            continue
        residual = link.capacity_gbps - used
        if residual <= EPSILON:
            working.remove_link(link.link_id)
        else:
            working.replace_link(link.link_id, capacity_gbps=residual)
