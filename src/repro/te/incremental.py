"""Incremental TE solving: structure reuse, memoization, batched what-ifs.

The paper's control loop re-runs an *unmodified* TE algorithm every
telemetry round — and its own §2 data says SNR (hence the capacity
vector) is stable for 83% of links, so most rounds hand the solver an
LP it has already seen.  This module exploits that in three layers:

1. **Structure reuse** — the assembled :class:`~repro.te.lp.
   MultiCommodityLp` (conservation/capacity blocks, their CSR forms,
   the variable layout) is cached keyed on the *structure* of the
   instance: node set, link ids/endpoints in insertion order, and the
   demand list.  A round that only changed link capacities rebinds the
   cached instance (an O(n_links) RHS update) instead of reassembling
   O(n_demands x n_links) constraint blocks.
2. **Exact solution memoization** — when the full numeric state
   (capacities, penalties, demands, objective) matches a recent round,
   the stored solver vector is replayed through the LP's own
   extraction, skipping the solve entirely.  The solver is
   deterministic, so identical inputs produce identical outputs and a
   memo hit is *bit-identical* to a fresh solve — the golden
   equivalence suite runs with the cache on.  A bounded LRU (not just
   the previous round) catches run/walk/crawl-style oscillation
   between a few recurring states.
3. **Batched what-if** — independent scenario solves (ticket replays,
   per-cable failure drills) fan out over the shared
   :mod:`repro.parallel` pool; every worker keeps its own structure
   cache, so "the same cable, degraded" reuses the assembled blocks
   worker-locally.

Invalidation needs no explicit hooks: any link appearing, disappearing
(e.g. forced dark by a fault) or changing endpoints changes the
structure key; any capacity/penalty/demand change changes the memo
key.  Both fall out of keying on values instead of mutating state.

``REPRO_TE_NO_CACHE=1`` (or the blanket ``REPRO_NO_CACHE=1``) disables
every layer; the CLI's ``--no-te-cache`` flag sets it for a run.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

import numpy as np

from repro import perf
from repro.net.demands import Demand
from repro.net.topology import Topology
from repro.parallel import pool_map, resolve_workers
from repro.state import NetworkState, capacity_digest, demand_digest, structure_digest
from repro.te.lp import LpOutcome, MultiCommodityLp
from repro.te.solution import TeSolution

#: disable only the TE solve cache
NO_TE_CACHE_ENV = "REPRO_TE_NO_CACHE"
#: the blanket cache kill-switch (shared with the telemetry summary cache)
NO_CACHE_ENV = "REPRO_NO_CACHE"

_TRUTHY = ("1", "true", "yes")

#: objectives the memo layer may replay (all deterministic HiGHS solves)
SOLVE_METHODS = (
    "max_throughput",
    "min_penalty_at_max_throughput",
    "min_max_utilization",
    "max_concurrent_flow",
)

#: recent numeric states remembered per cache (run/walk/crawl oscillation
#: revisits a handful of states, not hundreds)
DEFAULT_MEMO_SIZE = 16
#: assembled LP structures kept per cache (per distinct link/demand set)
DEFAULT_STRUCTURE_SIZE = 8


def te_cache_enabled(override: bool | None = None) -> bool:
    """Should TE solves go through the cache?

    An explicit ``override`` wins; otherwise the cache is on unless
    ``REPRO_TE_NO_CACHE`` or ``REPRO_NO_CACHE`` is truthy.
    """
    if override is not None:
        return override
    for env in (NO_TE_CACHE_ENV, NO_CACHE_ENV):
        if os.environ.get(env, "").lower() in _TRUTHY:
            return False
    return True


def structure_key(
    topology: Topology,
    demands: Sequence[Demand],
    *,
    state: NetworkState | None = None,
) -> Hashable:
    """What determines the LP's *shape*: nodes, link wiring, demand list.

    Link order matters (it is the variable layout), so the key keeps
    insertion order.  Demand volumes are included because they set the
    throughput-variable bounds; two demand sets differing only in
    volume could share constraint blocks, but keeping volumes in the
    structure key makes the memo key below a pure numeric suffix.

    The wiring half of the key is :attr:`NetworkState.structure_id` —
    passing the ``state`` a topology was materialized from reuses its
    cached digest and, by construction, produces the identical tuple.
    """
    wiring = structure_digest(topology) if state is None else state.structure_id
    return wiring + (demand_digest(demands),)


def numeric_key(
    topology: Topology, *, state: NetworkState | None = None
) -> Hashable:
    """The per-round numbers (:attr:`NetworkState.capacity_digest`):
    capacities and penalties in link order."""
    return capacity_digest(topology) if state is None else state.capacity_digest


@dataclass(frozen=True)
class _MemoEntry:
    """A solved state: the raw solver vector plus outcome metadata."""

    x: np.ndarray
    objective_value: float
    status: str
    concurrency: float | None


class TeSolveCache:
    """Bounded structure + exact-solution caches for one solve stream.

    One instance per controller (or pool worker): the caches are not
    thread-safe and sharing one across concurrent scenario streams
    would interleave their LRU orders non-deterministically.

    Determinism argument, in full: a structure hit rebinds the cached
    ``MultiCommodityLp`` to the round's topology — the constraint
    blocks are value-identical to what fresh assembly would build
    (same index arithmetic over the same wiring; the capacity RHS is
    rewritten in place, the penalty vector lazily rebuilt) — so HiGHS
    sees the same matrices and returns the same vector.  A memo hit
    replays a stored solver vector through ``_extract`` against the
    rebound topology, which is exactly what the original solve did
    with the same numbers.  Either way the result is bit-identical to
    an uncached solve; the golden suite and the ``te-cache`` CI job
    enforce it byte-for-byte.
    """

    def __init__(
        self,
        *,
        memo_size: int = DEFAULT_MEMO_SIZE,
        structure_size: int = DEFAULT_STRUCTURE_SIZE,
    ):
        if memo_size < 0 or structure_size < 1:
            raise ValueError("memo_size must be >= 0 and structure_size >= 1")
        self.memo_size = memo_size
        self.structure_size = structure_size
        self._structures: OrderedDict[Hashable, MultiCommodityLp] = OrderedDict()
        self._memo: OrderedDict[Hashable, _MemoEntry] = OrderedDict()

    # -- structure layer ---------------------------------------------------

    def lp(
        self,
        topology: Topology,
        demands: Sequence[Demand],
        *,
        state: NetworkState | None = None,
    ) -> MultiCommodityLp:
        """An assembled LP for this instance, reusing cached structure."""
        return self._lp_for(
            structure_key(topology, demands, state=state), topology, demands
        )

    def _lp_for(
        self, skey: Hashable, topology: Topology, demands: Sequence[Demand]
    ) -> MultiCommodityLp:
        lp = self._structures.get(skey)
        if lp is None:
            perf.event("te.cache.structure_miss")
            lp = MultiCommodityLp(topology, demands)
            self._structures[skey] = lp
            while len(self._structures) > self.structure_size:
                self._structures.popitem(last=False)
        else:
            perf.event("te.cache.structure_hit")
            self._structures.move_to_end(skey)
            lp.rebind(topology)
        return lp

    # -- memo layer --------------------------------------------------------

    def solve(
        self,
        topology: Topology,
        demands: Sequence[Demand],
        method: str = "min_penalty_at_max_throughput",
        *,
        state: NetworkState | None = None,
    ) -> LpOutcome:
        """Solve (or replay) one state under the named objective.

        With ``state`` (the :class:`NetworkState` the topology was
        materialized from, or a snapshot of it) both cache keys come
        from the state's cached digests —
        ``(state.structure_id, state.capacity_digest)`` — which are
        tuple-identical to the topology-derived keys, so mixing keyed
        styles against one cache cannot double-solve or mis-hit.
        """
        if method not in SOLVE_METHODS:
            raise ValueError(
                f"unknown solve method {method!r} (valid: {SOLVE_METHODS})"
            )
        skey = structure_key(topology, demands, state=state)
        mkey = (skey, numeric_key(topology, state=state), method)
        entry = self._memo.get(mkey)
        if entry is not None:
            perf.event("te.cache.memo_hit")
            self._memo.move_to_end(mkey)
            lp = self._lp_for(skey, topology, demands)
            with perf.timer("te.cache.replay"):
                solution = lp._extract(entry.x)
            return LpOutcome(
                solution=solution,
                objective_value=entry.objective_value,
                status=entry.status,
                concurrency=entry.concurrency,
                x=entry.x,
            )
        perf.event("te.cache.memo_miss")
        lp = self._lp_for(skey, topology, demands)
        outcome: LpOutcome = getattr(lp, method)()
        if self.memo_size and outcome.x is not None:
            self._memo[mkey] = _MemoEntry(
                x=outcome.x,
                objective_value=outcome.objective_value,
                status=outcome.status,
                concurrency=outcome.concurrency,
            )
            while len(self._memo) > self.memo_size:
                self._memo.popitem(last=False)
        return outcome

    def clear(self) -> None:
        self._structures.clear()
        self._memo.clear()

    @property
    def n_structures(self) -> int:
        return len(self._structures)

    @property
    def n_memo_entries(self) -> int:
        return len(self._memo)


class CachedTeAlgorithm:
    """A drop-in TE algorithm callable backed by a :class:`TeSolveCache`.

    ``(topology, demands) -> TeSolution`` with the named LP objective —
    the same signature the controller injects, so SWAN/B4/CSPF-style
    custom callables remain untouched while the default LP objective
    gets the accelerator.
    """

    def __init__(
        self,
        method: str = "min_penalty_at_max_throughput",
        *,
        cache: TeSolveCache | None = None,
    ):
        if method not in SOLVE_METHODS:
            raise ValueError(
                f"unknown solve method {method!r} (valid: {SOLVE_METHODS})"
            )
        self.method = method
        self.cache = cache if cache is not None else TeSolveCache()

    def __call__(
        self,
        topology: Topology,
        demands: Sequence[Demand],
        *,
        state: NetworkState | None = None,
    ) -> TeSolution:
        if state is None:
            # key on a verbatim snapshot: digests computed once, cached
            state = NetworkState.snapshot(topology, label="te.solve")
        return self.cache.solve(
            topology, demands, method=self.method, state=state
        ).solution


# -- batched what-if solves ------------------------------------------------

_worker_state = threading.local()


def worker_cache() -> TeSolveCache:
    """The calling worker's private :class:`TeSolveCache`.

    Thread-local so both pool flavours are safe: a process-pool worker
    gets one cache per process, the thread-pool fallback one per
    thread.  Scenario solves are pure functions of their inputs, so
    which worker solves which scenario cannot change any value.
    """
    cache = getattr(_worker_state, "te_cache", None)
    if cache is None:
        cache = _worker_state.te_cache = TeSolveCache()
    return cache


def _throughput_job(
    job: tuple[
        Topology | NetworkState,
        tuple[Demand, ...],
        Callable[[Topology, Sequence[Demand]], TeSolution] | None,
        bool,
    ],
) -> float:
    """One scenario's total throughput (module-level: picklable)."""
    scenario, demands, te_algorithm, use_cache = job
    if isinstance(scenario, NetworkState):
        # materialize in the worker; the state's cached digests key the
        # worker-local cache without re-walking the topology
        state: NetworkState | None = scenario
        topology = scenario.to_topology()
    else:
        state, topology = None, scenario
    if te_algorithm is not None:
        return te_algorithm(topology, demands).total_allocated_gbps
    if use_cache:
        outcome = worker_cache().solve(
            topology, demands, method="max_throughput", state=state
        )
    else:
        outcome = MultiCommodityLp(topology, demands).max_throughput()
    return outcome.objective_value


def batch_throughput(
    scenarios: Sequence[Topology | NetworkState],
    demands: Sequence[Demand],
    *,
    te_algorithm: Callable[[Topology, Sequence[Demand]], TeSolution]
    | None = None,
    workers: int | None = None,
    te_cache: bool | None = None,
) -> list[float]:
    """Total throughput of independent scenarios, in input order.

    Scenarios are :class:`Topology` objects or :class:`NetworkState`
    forks (materialized worker-side via
    :meth:`~repro.state.NetworkState.to_topology`, which preserves
    link order — the results are identical either way).  The default
    (``te_algorithm=None``) solves the max-throughput LP through
    per-worker structure caches — degrade-style scenarios that share
    wiring with an earlier scenario skip reassembly.  A custom
    ``te_algorithm`` is called as-is (it must be picklable to benefit
    from a process pool).  Results are returned in input order and are
    identical for any worker count, including serial.
    """
    use_cache = te_cache_enabled(te_cache)
    demands = tuple(demands)
    jobs = [
        (scenario, demands, te_algorithm, use_cache) for scenario in scenarios
    ]
    n_workers = resolve_workers(workers)
    with perf.timer(
        "te.batch.throughput", n_scenarios=len(jobs), workers=n_workers
    ):
        if n_workers > 1 and len(jobs) > 1:
            return list(pool_map(_throughput_job, jobs, n_workers))
        return [_throughput_job(job) for job in jobs]
