"""B4-style max-min fair progressive filling.

B4 (Jain et al., SIGCOMM 2013) allocates bandwidth to flow groups by
progressive filling over tunnel groups: every unsatisfied flow group's
allocation grows at the same rate until either the group's demand is met
or every tunnel available to it hits a bottleneck; bottlenecked groups
freeze, and filling continues for the rest.

This implementation uses the k-shortest paths of each demand as its
tunnel group and waterfills in discrete rounds.  It is combinatorial
(no LP), so it doubles as an independent check on the LP allocators —
its total throughput must never exceed the LP optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.net.demands import Demand
from repro.net.paths import LinkPath, k_shortest_paths
from repro.net.topology import Topology
from repro.te.solution import EPSILON, FlowAssignment, TeSolution


@dataclass
class _Group:
    """Mutable allocation state of one demand during filling."""

    demand: Demand
    paths: list[LinkPath]
    allocated: float = 0.0
    frozen: bool = False

    def active_paths(self, residual: dict[str, float]) -> list[LinkPath]:
        """Paths that still have room on every hop."""
        return [
            p
            for p in self.paths
            if all(residual[l.link_id] > EPSILON for l in p.links)
        ]


def b4_allocate(
    topology: Topology,
    demands: Sequence[Demand],
    *,
    k_paths: int = 4,
    round_quantum_gbps: float | None = None,
) -> TeSolution:
    """Max-min fair allocation by progressive filling.

    Args:
        topology: (possibly augmented) network.
        demands: flow groups; priorities are ignored — B4's published
            fairness is within one priority tier, and callers that need
            tiers should invoke this once per tier.
        k_paths: tunnels per demand (B4 uses a small handful).
        round_quantum_gbps: fill step; defaults to 1% of the largest
            demand.  Smaller = fairer but slower.

    Every round, each unfrozen group receives up to one quantum spread
    across its still-usable tunnels (cheapest-penalty tunnel first).
    Groups freeze when satisfied or when all tunnels are saturated.
    """
    if not demands:
        raise ValueError("need at least one demand")
    if k_paths <= 0:
        raise ValueError("k_paths must be positive")
    max_volume = max(d.volume_gbps for d in demands)
    quantum = (
        round_quantum_gbps
        if round_quantum_gbps is not None
        else max(max_volume / 100.0, 1e-3)
    )
    if quantum <= 0:
        raise ValueError("round quantum must be positive")

    residual = {l.link_id: l.capacity_gbps for l in topology.links}
    groups = [
        _Group(
            demand=d,
            paths=sorted(
                k_shortest_paths(topology, d.src, d.dst, k_paths),
                key=lambda p: (p.penalty, p.weight),
            ),
        )
        for d in demands
    ]
    edge_flows: list[dict[str, float]] = [{} for _ in groups]

    active = [g for g in groups if g.paths and g.demand.volume_gbps > 0]
    for g in groups:
        if not g.paths or g.demand.volume_gbps <= 0:
            g.frozen = True

    while active:
        for gi, group in enumerate(groups):
            if group.frozen:
                continue
            want = min(quantum, group.demand.volume_gbps - group.allocated)
            placed = _place(group, want, residual, edge_flows[gi])
            group.allocated += placed
            if group.allocated >= group.demand.volume_gbps - EPSILON:
                group.frozen = True
            elif placed <= EPSILON:
                group.frozen = True  # bottlenecked everywhere
        active = [g for g in groups if not g.frozen]

    return TeSolution(
        topology,
        [
            FlowAssignment(
                demand=g.demand,
                allocated_gbps=g.allocated,
                edge_flows=edge_flows[i],
            )
            for i, g in enumerate(groups)
        ],
    )


def _place(
    group: _Group,
    want: float,
    residual: dict[str, float],
    flows: dict[str, float],
) -> float:
    """Push up to ``want`` Gbps across the group's tunnels; returns placed."""
    placed = 0.0
    for path in group.paths:
        if placed >= want - EPSILON:
            break
        room = min(residual[l.link_id] for l in path.links)
        take = min(room, want - placed)
        if take <= EPSILON:
            continue
        for link in path.links:
            residual[link.link_id] -= take
            flows[link.link_id] = flows.get(link.link_id, 0.0) + take
        placed += take
    return placed
