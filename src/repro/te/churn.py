"""Routing churn between consecutive TE solutions.

The penalty function of Section 4 exists to control *churn*: every
round that moves flow around costs rule updates, packet reordering and
transient loss.  These metrics quantify it so ablations can show the
trade-off (a cheaper-to-churn solution usually carries less traffic):

* **flow churn** — total |delta| of per-link rates between rounds, in
  Gbps (the volume the data plane must move);
* **demand churn** — how many demands saw their routing change at all;
* **rule churn** — how many (demand, link) entries appeared or
  disappeared, a proxy for FIB/tunnel updates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.te.solution import EPSILON, TeSolution


@dataclass(frozen=True)
class ChurnReport:
    """Churn between two TE solutions over the same demand set."""

    flow_churn_gbps: float
    n_demands_rerouted: int
    n_rule_changes: int
    n_demands: int

    @property
    def rerouted_fraction(self) -> float:
        return self.n_demands_rerouted / self.n_demands if self.n_demands else 0.0


def solution_churn(
    before: TeSolution,
    after: TeSolution,
    *,
    rate_tolerance_gbps: float = 1e-3,
) -> ChurnReport:
    """Measure the routing delta from ``before`` to ``after``.

    The two solutions must cover the same demands in the same order
    (the controller guarantees this across rounds).  Rate changes
    smaller than ``rate_tolerance_gbps`` are ignored — LP re-solves
    jitter at numerical noise level even when nothing real moved.
    """
    if len(before.assignments) != len(after.assignments):
        raise ValueError("solutions cover different demand sets")
    flow_churn = 0.0
    rerouted = 0
    rule_changes = 0
    for a, b in zip(before.assignments, after.assignments):
        if a.demand.pair != b.demand.pair:
            raise ValueError(
                f"demand mismatch: {a.demand.pair} vs {b.demand.pair}"
            )
        link_ids = set(a.edge_flows) | set(b.edge_flows)
        demand_moved = False
        for link_id in sorted(link_ids):
            rate_a = a.edge_flows.get(link_id, 0.0)
            rate_b = b.edge_flows.get(link_id, 0.0)
            delta = abs(rate_b - rate_a)
            if delta <= rate_tolerance_gbps:
                continue
            flow_churn += delta
            demand_moved = True
            if rate_a <= EPSILON or rate_b <= EPSILON:
                rule_changes += 1  # entry appeared or disappeared
        if demand_moved:
            rerouted += 1
    return ChurnReport(
        flow_churn_gbps=flow_churn,
        n_demands_rerouted=rerouted,
        n_rule_changes=rule_changes,
        n_demands=len(before.assignments),
    )


def cumulative_churn(
    solutions: list[TeSolution],
    *,
    rate_tolerance_gbps: float = 1e-3,
) -> ChurnReport:
    """Total churn across a sequence of rounds (pairwise-summed)."""
    if len(solutions) < 2:
        raise ValueError("need at least two rounds to measure churn")
    total_flow = 0.0
    total_rerouted = 0
    total_rules = 0
    for before, after in zip(solutions, solutions[1:]):
        report = solution_churn(
            before, after, rate_tolerance_gbps=rate_tolerance_gbps
        )
        total_flow += report.flow_churn_gbps
        total_rerouted += report.n_demands_rerouted
        total_rules += report.n_rule_changes
    return ChurnReport(
        flow_churn_gbps=total_flow,
        n_demands_rerouted=total_rerouted,
        n_rule_changes=total_rules,
        n_demands=len(solutions[0].assignments),
    )
