"""Flow decomposition: edge flows -> path (tunnel) flows.

The LP allocators return per-edge flows, but SWAN and B4 program the
network as *tunnels* — explicit paths with rates.  The classical flow
decomposition theorem says any conservation-respecting edge flow of
value ``v`` splits into at most ``|E|`` simple paths (plus cycles,
which carry no value and are discarded).  This module performs that
decomposition so LP output can drive a tunnel-based data plane, and so
tests can check the two representations agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.paths import LinkPath
from repro.net.topology import Topology
from repro.te.solution import EPSILON, FlowAssignment, TeSolution


@dataclass(frozen=True)
class PathFlow:
    """One tunnel: a path and the rate assigned to it."""

    path: LinkPath
    rate_gbps: float

    def __post_init__(self) -> None:
        if self.rate_gbps <= 0:
            raise ValueError("a tunnel must carry positive rate")


@dataclass(frozen=True)
class Decomposition:
    """The tunnels of one demand, plus any cycle flow that was dropped."""

    paths: tuple[PathFlow, ...]
    cycle_flow_gbps: float

    @property
    def total_rate_gbps(self) -> float:
        return sum(p.rate_gbps for p in self.paths)


def decompose_assignment(
    topology: Topology, assignment: FlowAssignment
) -> Decomposition:
    """Split one demand's edge flows into simple tunnels.

    Repeatedly walks from the source along positive-residual edges to
    the sink (always taking the locally largest residual, which keeps
    the tunnel count small in practice), peels off the bottleneck rate,
    and stops when the source has no outgoing flow left.  Remaining
    flow is cyclic and reported, not silently dropped.
    """
    residual = {
        link_id: flow
        for link_id, flow in assignment.edge_flows.items()
        if flow > EPSILON
    }
    src, dst = assignment.demand.src, assignment.demand.dst
    paths: list[PathFlow] = []

    while True:
        path_links = _walk(topology, residual, src, dst)
        if path_links is None:
            break
        rate = min(residual[l.link_id] for l in path_links)
        for link in path_links:
            residual[link.link_id] -= rate
            if residual[link.link_id] <= EPSILON:
                del residual[link.link_id]
        paths.append(PathFlow(LinkPath(tuple(path_links)), rate))

    cycle_flow = sum(residual.values())
    return Decomposition(paths=tuple(paths), cycle_flow_gbps=cycle_flow)


def _walk(topology, residual, src, dst):
    """One simple src->dst path through the residual support, or None."""
    if not residual:
        return None
    path = []
    node = src
    visited = {src}
    while node != dst:
        candidates = [
            l
            for l in topology.out_links(node)
            if residual.get(l.link_id, 0.0) > EPSILON and l.dst not in visited
        ]
        if not candidates:
            if not path:
                return None
            # dead end: back up one hop and forbid re-entering it
            dead = path.pop()
            # removing from residual would lose flow accounting; instead
            # mark via visited (the dead node stays excluded)
            node = dead.src
            continue
        best = max(candidates, key=lambda l: residual[l.link_id])
        path.append(best)
        node = best.dst
        visited.add(node)
    return path if path else None


def decompose_solution(
    solution: TeSolution,
) -> dict[int, Decomposition]:
    """Decompose every assignment; keys are assignment indices."""
    return {
        i: decompose_assignment(solution.topology, a)
        for i, a in enumerate(solution.assignments)
    }
