"""The common TE solution object and its invariant checks.

Every TE algorithm in :mod:`repro.te` returns a :class:`TeSolution`:
per-demand edge flows plus the allocated volume.  The solution knows how
to audit itself (flow conservation, capacity, non-negativity), which the
property-based tests lean on heavily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.net.demands import Demand
from repro.net.topology import Topology

#: numerical slack for LP solutions
EPSILON = 1e-6


class TeSolverError(RuntimeError):
    """A TE solve failed (injected fault or a genuine solver error).

    The hardened controller catches exactly this type: wrap a real
    backend failure in it when graceful degradation (retry, then hold
    the last solution) is the desired response.
    """


@dataclass(frozen=True)
class FlowAssignment:
    """How one demand is routed: flow per link id, plus the total."""

    demand: Demand
    allocated_gbps: float
    edge_flows: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.allocated_gbps < -EPSILON:
            raise ValueError("allocated volume must be non-negative")

    @property
    def satisfaction(self) -> float:
        """Fraction of the demand that was allocated (1.0 when satisfied)."""
        if self.demand.volume_gbps == 0:
            return 1.0
        return self.allocated_gbps / self.demand.volume_gbps


class TeSolution:
    """A complete flow assignment over a topology."""

    def __init__(
        self,
        topology: Topology,
        assignments: Sequence[FlowAssignment],
    ):
        self.topology = topology
        self.assignments = tuple(assignments)
        self._link_flow: dict[str, float] = {}
        for assignment in self.assignments:
            for link_id, flow in assignment.edge_flows.items():
                self._link_flow[link_id] = self._link_flow.get(link_id, 0.0) + flow

    # -- aggregate metrics ------------------------------------------------

    @property
    def total_allocated_gbps(self) -> float:
        return sum(a.allocated_gbps for a in self.assignments)

    @property
    def total_demand_gbps(self) -> float:
        return sum(a.demand.volume_gbps for a in self.assignments)

    @property
    def overall_satisfaction(self) -> float:
        if self.total_demand_gbps == 0:
            return 1.0
        return self.total_allocated_gbps / self.total_demand_gbps

    def link_flow(self, link_id: str) -> float:
        return self._link_flow.get(link_id, 0.0)

    def utilization(self, link_id: str) -> float:
        link = self.topology.link(link_id)
        return self.link_flow(link_id) / link.capacity_gbps

    @property
    def max_utilization(self) -> float:
        if not self._link_flow:
            return 0.0
        return max(self.utilization(i) for i in self._link_flow)

    @property
    def penalty_cost(self) -> float:
        """Total penalty incurred: sum over links of penalty * flow.

        For an augmented topology this is the disruption cost of the
        capacity upgrades the solution implies.
        """
        return sum(
            self.topology.link(i).penalty * flow
            for i, flow in self._link_flow.items()
        )

    def flow_on_fake_links(self) -> dict[str, float]:
        """Flow riding on augmentation links (> EPSILON only)."""
        return {
            i: f
            for i, f in self._link_flow.items()
            if f > EPSILON and self.topology.link(i).is_fake
        }

    # -- invariant checks -------------------------------------------------

    def violations(self, *, tolerance: float = 1e-4) -> list[str]:
        """Audit the solution; returns human-readable violations.

        Checks, per the LP's constraints:

        * no negative edge flow;
        * no link carries more than its capacity;
        * per-commodity flow conservation at every node (source emits
          exactly the allocated volume, sink absorbs it, others balance).
        """
        problems = []
        for link_id, flow in self._link_flow.items():
            if flow < -tolerance:
                problems.append(f"negative flow {flow:.4f} on {link_id}")
            capacity = self.topology.link(link_id).capacity_gbps
            if flow > capacity + tolerance:
                problems.append(
                    f"link {link_id} overloaded: {flow:.4f} > {capacity:.4f}"
                )
        for idx, assignment in enumerate(self.assignments):
            problems.extend(self._conservation_violations(idx, assignment, tolerance))
        return problems

    def _conservation_violations(
        self, idx: int, assignment: FlowAssignment, tolerance: float
    ) -> list[str]:
        problems = []
        balance: dict[str, float] = {}
        for link_id, flow in assignment.edge_flows.items():
            link = self.topology.link(link_id)
            balance[link.src] = balance.get(link.src, 0.0) + flow
            balance[link.dst] = balance.get(link.dst, 0.0) - flow
        demand = assignment.demand
        for node, net_out in balance.items():
            if node == demand.src:
                expected = assignment.allocated_gbps
            elif node == demand.dst:
                expected = -assignment.allocated_gbps
            else:
                expected = 0.0
            if abs(net_out - expected) > tolerance:
                problems.append(
                    f"demand {idx} ({demand.src}->{demand.dst}): node {node} "
                    f"imbalance {net_out:.4f}, expected {expected:.4f}"
                )
        return problems

    def is_valid(self, *, tolerance: float = 1e-4) -> bool:
        return not self.violations(tolerance=tolerance)

    def __repr__(self) -> str:
        return (
            f"TeSolution(demands={len(self.assignments)}, "
            f"allocated={self.total_allocated_gbps:.1f} Gbps, "
            f"penalty={self.penalty_cost:.1f})"
        )


def empty_solution(topology: Topology, demands: Sequence[Demand]) -> TeSolution:
    """An all-zero allocation (the degenerate fallback)."""
    return TeSolution(
        topology,
        [FlowAssignment(d, 0.0, {}) for d in demands],
    )
