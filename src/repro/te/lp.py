"""Edge-based multicommodity flow LPs on scipy's HiGHS backend.

This is the workhorse the SWAN/B4-style controllers and the Theorem-1
machinery sit on.  The formulation is the standard node-arc one:

* variables ``x[k, e]`` — flow of commodity ``k`` on link ``e`` — plus
  one throughput variable ``t[k]`` per commodity;
* conservation: at every node, commodity outflow minus inflow equals
  ``+t[k]`` at the source, ``-t[k]`` at the sink, 0 elsewhere;
* capacity: total flow on a link never exceeds its capacity;
* demand: ``t[k] <= volume[k]``.

Three objectives are exposed:

* **max throughput** — maximise ``sum_k t[k]``;
* **min-penalty at max throughput** — the two-phase program behind
  Theorem 1: first find the maximum throughput ``T*``, then minimise
  ``sum_e penalty[e] * flow[e]`` subject to throughput ``>= T*``.
  This is exactly "min-cost max-flow" generalised to many commodities;
* **max concurrent flow** — maximise ``lambda`` with every commodity
  served ``lambda * volume`` (the classic fairness LP).

Matrices are assembled sparse (COO) — an augmented 21-node backbone with
~420 commodities stays comfortably within HiGHS territory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro import perf
from repro.net.demands import Demand
from repro.net.topology import Topology
from repro.te.solution import EPSILON, FlowAssignment, TeSolution


@dataclass(frozen=True)
class LpOutcome:
    """A solved LP: the TE solution plus solver metadata."""

    solution: TeSolution
    objective_value: float
    status: str
    #: for max_concurrent_flow: the common satisfaction fraction
    concurrency: float | None = None
    #: the raw solver vector (excluded from equality: replaying it
    #: through :meth:`MultiCommodityLp._extract` is how the incremental
    #: layer memoizes exact solutions without re-solving)
    x: np.ndarray | None = field(default=None, compare=False, repr=False)


class MultiCommodityLp:
    """Shared LP scaffolding for one (topology, demands) instance."""

    def __init__(self, topology: Topology, demands: Sequence[Demand]):
        if not demands:
            raise ValueError("need at least one demand")
        for d in demands:
            for node in (d.src, d.dst):
                if not topology.has_node(node):
                    raise KeyError(f"demand endpoint {node!r} not in topology")
        self.topology = topology
        self.demands = tuple(demands)
        self.links = list(topology.links)
        self.nodes = list(topology.nodes)
        self._link_index = {l.link_id: i for i, l in enumerate(self.links)}
        self._node_index = {n: i for i, n in enumerate(self.nodes)}
        self.n_links = len(self.links)
        self.n_demands = len(self.demands)
        # x variables: commodity-major layout; t variables appended
        self.n_flow_vars = self.n_demands * self.n_links
        # per-link index arrays: all constraint blocks are assembled from
        # these with numpy broadcasting instead of per-(k, e) Python loops
        self._link_src = np.fromiter(
            (self._node_index[l.src] for l in self.links),
            dtype=np.int64,
            count=self.n_links,
        )
        self._link_dst = np.fromiter(
            (self._node_index[l.dst] for l in self.links),
            dtype=np.int64,
            count=self.n_links,
        )
        self._link_ids = [l.link_id for l in self.links]
        # constraint blocks are identical across the solve methods (and
        # across both phases of the Theorem-1 program), so build each once
        self._conservation_cache: tuple[sparse.coo_matrix, np.ndarray] | None = None
        self._capacity_cache: tuple[sparse.coo_matrix, np.ndarray] | None = None
        self._penalty_cache: np.ndarray | None = None
        # the CSR conversions linprog needs are deterministic and as
        # reusable as the COO blocks themselves; cache them alongside
        self._conservation_csr: sparse.csr_matrix | None = None
        self._capacity_csr: sparse.csr_matrix | None = None

    def rebind(self, topology: Topology) -> None:
        """Re-point this assembled LP at a structurally identical topology.

        The caller (see :mod:`repro.te.incremental`) guarantees
        ``topology`` has the same nodes and the same links — ids,
        endpoints, insertion order — as the instance was built from;
        only per-link capacities and penalties may differ.  The capacity
        RHS is rewritten in place (O(n_links)) and the penalty vector is
        dropped for lazy rebuild; every assembled constraint block and
        its CSR form is reused as-is, so a rebound instance solves with
        matrices value-identical to fresh assembly.
        """
        self.topology = topology
        self.links = list(topology.links)
        if self._capacity_cache is not None:
            b_ub = self._capacity_cache[1]
            b_ub[:] = [l.capacity_gbps for l in self.links]
        self._penalty_cache = None

    # -- variable layout --------------------------------------------------

    def _x(self, k: int, e: int) -> int:
        return k * self.n_links + e

    def _t(self, k: int) -> int:
        return self.n_flow_vars + k

    @property
    def n_vars(self) -> int:
        return self.n_flow_vars + self.n_demands

    # -- constraint blocks --------------------------------------------------

    def _conservation(self) -> tuple[sparse.coo_matrix, np.ndarray]:
        """A_eq x = 0 rows: one per (commodity, node).

        Assembled once per instance as four COO blocks built with index
        arithmetic (+1 at each link's source row, -1 at its destination
        row, -/+1 tying t_k to its commodity's source/sink); every solve
        method reuses the cached matrix.
        """
        if self._conservation_cache is None:
            with perf.timer("lp.assemble.conservation"):
                n_k, n_e = self.n_demands, self.n_links
                n_n = len(self.nodes)
                k = np.arange(n_k, dtype=np.int64)
                e = np.arange(n_e, dtype=np.int64)
                flow_cols = (k[:, None] * n_e + e[None, :]).ravel()
                out_rows = (k[:, None] * n_n + self._link_src[None, :]).ravel()
                in_rows = (k[:, None] * n_n + self._link_dst[None, :]).ravel()
                d_src = np.fromiter(
                    (self._node_index[d.src] for d in self.demands),
                    dtype=np.int64,
                    count=n_k,
                )
                d_dst = np.fromiter(
                    (self._node_index[d.dst] for d in self.demands),
                    dtype=np.int64,
                    count=n_k,
                )
                rows = np.concatenate(
                    [out_rows, in_rows, k * n_n + d_src, k * n_n + d_dst]
                )
                cols = np.concatenate(
                    [flow_cols, flow_cols, self.n_flow_vars + k, self.n_flow_vars + k]
                )
                vals = np.concatenate(
                    [
                        np.ones(n_k * n_e),
                        -np.ones(n_k * n_e),
                        -np.ones(n_k),
                        np.ones(n_k),
                    ]
                )
                a_eq = sparse.coo_matrix(
                    (vals, (rows, cols)), shape=(n_k * n_n, self.n_vars)
                )
                self._conservation_cache = (a_eq, np.zeros(n_k * n_n))
        return self._conservation_cache

    def _capacity(self) -> tuple[sparse.coo_matrix, np.ndarray]:
        """A_ub x <= cap rows: one per link, summed over commodities."""
        if self._capacity_cache is None:
            with perf.timer("lp.assemble.capacity"):
                n_k, n_e = self.n_demands, self.n_links
                k = np.arange(n_k, dtype=np.int64)
                e = np.arange(n_e, dtype=np.int64)
                rows = np.tile(e, n_k)
                cols = (k[:, None] * n_e + e[None, :]).ravel()
                a_ub = sparse.coo_matrix(
                    (np.ones(n_k * n_e), (rows, cols)),
                    shape=(n_e, self.n_vars),
                )
                b_ub = np.array([l.capacity_gbps for l in self.links])
                self._capacity_cache = (a_ub, b_ub)
        return self._capacity_cache

    def _conservation_matrix(self) -> sparse.csr_matrix:
        """The conservation block in the CSR form linprog consumes."""
        if self._conservation_csr is None:
            self._conservation_csr = self._conservation()[0].tocsr()
        return self._conservation_csr

    def _capacity_matrix(self) -> sparse.csr_matrix:
        """The capacity block in the CSR form linprog consumes."""
        if self._capacity_csr is None:
            self._capacity_csr = self._capacity()[0].tocsr()
        return self._capacity_csr

    def _bounds(self, *, cap_throughput: bool = True) -> list[tuple[float, float | None]]:
        bounds: list[tuple[float, float | None]] = [
            (0.0, None) for _ in range(self.n_flow_vars)
        ]
        for demand in self.demands:
            upper = demand.volume_gbps if cap_throughput else None
            bounds.append((0.0, upper))
        return bounds

    def _penalty_vector(self) -> np.ndarray:
        """Per-variable penalty costs (a fresh copy — callers mutate it)."""
        if self._penalty_cache is None:
            per_link = np.fromiter(
                (l.penalty for l in self.links), dtype=float, count=self.n_links
            )
            c = np.zeros(self.n_vars)
            c[: self.n_flow_vars] = np.tile(per_link, self.n_demands)
            self._penalty_cache = c
        return self._penalty_cache.copy()

    # -- solves -------------------------------------------------------------

    def _run(self, c, a_ub, b_ub, a_eq, b_eq, bounds):
        with perf.timer(
            "lp.solve", n_vars=len(c), n_demands=self.n_demands
        ):
            result = linprog(
                c,
                A_ub=a_ub.tocsr(),
                b_ub=b_ub,
                A_eq=a_eq.tocsr(),
                b_eq=b_eq,
                bounds=bounds,
                method="highs",
            )
        if not result.success:
            raise RuntimeError(f"LP failed: {result.message}")
        return result

    def _extract(self, x: np.ndarray) -> TeSolution:
        """Read a solver vector back into a TeSolution.

        The flow block is scanned as one (n_demands, n_links) array; only
        the entries above EPSILON (a handful per commodity) are touched in
        Python.
        """
        flows = np.asarray(x[: self.n_flow_vars]).reshape(
            self.n_demands, self.n_links
        )
        t_vals = np.asarray(x[self.n_flow_vars : self.n_flow_vars + self.n_demands])
        edge_flows: list[dict[str, float]] = [{} for _ in range(self.n_demands)]
        # one mask drops the near-zero flows; nonzero gives the surviving
        # (commodity, link) pairs in row-major order, and one fancy-index
        # gather pulls their values — Python only touches the survivors
        mask = flows > EPSILON
        ks, es = np.nonzero(mask)
        link_ids = self._link_ids
        for k, e, value in zip(ks.tolist(), es.tolist(), flows[mask].tolist()):
            edge_flows[k][link_ids[e]] = value
        assignments = [
            FlowAssignment(
                demand=demand,
                allocated_gbps=max(float(t_vals[k]), 0.0),
                edge_flows=edge_flows[k],
            )
            for k, demand in enumerate(self.demands)
        ]
        return TeSolution(self.topology, assignments)

    def max_throughput(self, *, penalty_weight: float = 0.0) -> LpOutcome:
        """Maximise total allocated volume.

        ``penalty_weight`` > 0 folds the penalty into the objective as a
        soft cost (``max sum t - w * sum p*x``) — the single-shot
        approximation of the two-phase program.  Keep it well below
        1/max_path_length or it will start sacrificing throughput.
        """
        b_eq = self._conservation()[1]
        b_ub = self._capacity()[1]
        c = penalty_weight * self._penalty_vector()
        # tiny per-unit-flow cost keeps solutions off pointless cycles
        c[: self.n_flow_vars] += 1e-9
        c[self.n_flow_vars :] = -1.0  # linprog minimises; t vars fill the tail
        result = self._run(
            c,
            self._capacity_matrix(),
            b_ub,
            self._conservation_matrix(),
            b_eq,
            self._bounds(),
        )
        solution = self._extract(result.x)
        return LpOutcome(
            solution=solution,
            objective_value=solution.total_allocated_gbps,
            status="optimal",
            x=result.x,
        )

    def min_penalty_at_max_throughput(self) -> LpOutcome:
        """The Theorem-1 objective: min-cost among max-throughput flows.

        Phase 1 finds the maximum throughput ``T*``; phase 2 minimises
        the penalty subject to total throughput >= T* (less a numerical
        hair, so phase 2 stays feasible).
        """
        phase1 = self.max_throughput()
        t_star = phase1.objective_value

        b_eq = self._conservation()[1]
        b_ub = self._capacity()[1]
        # extra row: -sum_k t_k <= -(T* - eps)
        extra = sparse.coo_matrix(
            (
                -np.ones(self.n_demands),
                (
                    np.zeros(self.n_demands, dtype=np.int64),
                    self.n_flow_vars + np.arange(self.n_demands, dtype=np.int64),
                ),
            ),
            shape=(1, self.n_vars),
        )
        slack = max(1e-7 * max(t_star, 1.0), 1e-9)
        a_ub_full = sparse.vstack([self._capacity_matrix(), extra])
        b_ub_full = np.concatenate([b_ub, [-(t_star - slack)]])
        c = self._penalty_vector()
        # tiny tie-break keeps flow off zero-penalty cycles
        c[: self.n_flow_vars] += 1e-9
        result = self._run(
            c, a_ub_full, b_ub_full, self._conservation_matrix(), b_eq, self._bounds()
        )
        solution = self._extract(result.x)
        return LpOutcome(
            solution=solution,
            objective_value=solution.penalty_cost,
            status="optimal",
            x=result.x,
        )

    def min_max_utilization(self) -> LpOutcome:
        """Route ALL demand while minimising the maximum link utilisation.

        The classic load-balancing TE objective (B4/MPLS-TE flavour):
        every commodity is fully served (infeasible instances raise),
        and the objective spreads load so the hottest link is as cool
        as possible.  ``objective_value`` is the achieved MLU; values
        above 1.0 mean the demand does not fit and links would be
        oversubscribed proportionally.
        """
        n = self.n_vars + 1  # mu (the MLU) is the last variable
        mu = self.n_vars

        a_eq_base, _ = self._conservation()
        a_eq_base = sparse.coo_matrix(
            (a_eq_base.data, (a_eq_base.row, a_eq_base.col)),
            shape=(a_eq_base.shape[0], n),
        )
        # pin every commodity at full demand: t_k = d_k
        k = np.arange(self.n_demands, dtype=np.int64)
        pin = sparse.coo_matrix(
            (np.ones(self.n_demands), (k, self.n_flow_vars + k)),
            shape=(self.n_demands, n),
        )
        a_eq = sparse.vstack([a_eq_base, pin])
        b_eq = np.concatenate(
            [
                np.zeros(a_eq_base.shape[0]),
                [d.volume_gbps for d in self.demands],
            ]
        )

        # capacity rows become: sum_k x_ke - cap_e * mu <= 0
        cap, cap_b = self._capacity()
        mu_col = sparse.coo_matrix(
            (-cap_b, (list(range(self.n_links)), [mu] * self.n_links)),
            shape=(self.n_links, n),
        )
        cap = sparse.coo_matrix(
            (cap.data, (cap.row, cap.col)), shape=(self.n_links, n)
        )
        a_ub = (cap + mu_col).tocoo()
        b_ub = np.zeros(self.n_links)

        bounds = self._bounds(cap_throughput=False)
        bounds.append((0.0, None))  # mu free upward: report oversubscription
        c = np.zeros(n)
        c[: self.n_flow_vars] += 1e-9  # cycle suppression
        c[mu] = 1.0
        result = self._run(c, a_ub, b_ub, a_eq, b_eq, bounds)
        solution = self._extract(result.x[: self.n_vars])
        return LpOutcome(
            solution=solution,
            objective_value=float(result.x[mu]),
            status="optimal",
            x=result.x,
        )

    def max_concurrent_flow(self, *, cap_at_one: bool = True) -> LpOutcome:
        """Maximise the common satisfaction fraction ``lambda``.

        Every commodity is served exactly ``lambda * volume``; with
        ``cap_at_one`` the fraction saturates at full satisfaction
        (the variant TE controllers actually deploy).
        """
        # replace the per-commodity t_k with t_k = lambda * d_k by adding
        # equality rows t_k - d_k * lambda = 0 and one extra variable.
        n = self.n_vars + 1  # lambda is the last variable
        lam = self.n_vars

        a_eq_base, _ = self._conservation()
        a_eq_base = sparse.coo_matrix(
            (a_eq_base.data, (a_eq_base.row, a_eq_base.col)),
            shape=(a_eq_base.shape[0], n),
        )
        k = np.arange(self.n_demands, dtype=np.int64)
        volumes = np.fromiter(
            (d.volume_gbps for d in self.demands), dtype=float, count=self.n_demands
        )
        tie = sparse.coo_matrix(
            (
                np.concatenate([np.ones(self.n_demands), -volumes]),
                (
                    np.concatenate([k, k]),
                    np.concatenate(
                        [self.n_flow_vars + k, np.full(self.n_demands, lam)]
                    ),
                ),
            ),
            shape=(self.n_demands, n),
        )
        a_eq = sparse.vstack([a_eq_base, tie])
        b_eq = np.zeros(a_eq.shape[0])

        a_ub, b_ub = self._capacity()
        a_ub = sparse.coo_matrix(
            (a_ub.data, (a_ub.row, a_ub.col)), shape=(self.n_links, n)
        )

        bounds = self._bounds(cap_throughput=False)
        bounds.append((0.0, 1.0 if cap_at_one else None))

        c = np.zeros(n)
        c[: self.n_flow_vars] += 1e-9  # cycle suppression, as above
        c[lam] = -1.0
        result = self._run(c, a_ub, b_ub, a_eq, b_eq, bounds)
        solution = self._extract(result.x[: self.n_vars])
        return LpOutcome(
            solution=solution,
            objective_value=float(result.x[lam]),
            status="optimal",
            concurrency=float(result.x[lam]),
            x=result.x,
        )
