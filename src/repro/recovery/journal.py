"""Durable write-ahead journal + checkpoint/recovery for the controller.

The journal turns one controller run into an append-only on-disk record
that survives ``SIGKILL`` at any byte:

* **Framed JSONL segments** (``wal-<version>.jsonl``): every record is
  one line, ``<length>:<crc32 hex>:<canonical json>\\n``.  Length and
  CRC let recovery detect a torn tail (process died mid-``write``) and
  truncate it instead of aborting; canonical JSON (sorted keys, compact
  separators, shortest-repr floats) makes the files byte-deterministic
  across runs — no timestamps ever enter a framed record.
* **Two record kinds.**  ``transition`` frames carry one
  :class:`~repro.state.store.StateStore` commit (version chain +
  ``delta_payload`` list); a ``round`` frame carries the controller's
  round context, its :class:`ControllerReport` payload and the runtime
  snapshot (rng states, traffic, BVT rates).  The **round frame is the
  commit point**: recovery only accepts transitions that a later round
  frame covers, so a crash between a state commit and the round commit
  rolls the half-done round back and resume re-executes it — which is
  what makes every crash seam byte-equivalent to the uninterrupted run.
* **Atomic checkpoints** (``checkpoint-<version>.json``): a full
  :func:`~repro.state.serialize.state_to_payload` snapshot written to a
  temp file and ``rename``d into place every ``checkpoint_every`` round
  commits, after which the WAL rolls to a fresh segment.  Recovery
  starts from the newest *valid* checkpoint (a corrupt one falls back
  to the previous, replaying more deltas) and replays framed deltas
  bit-for-bit via :func:`~repro.state.delta.apply_deltas`.

``fsync`` policy trades durability for speed: ``"always"`` syncs every
frame, ``"round"`` (default) syncs at each round commit, ``"never"``
only flushes to the OS.  Crash *simulation* in-process (the
``controller.crash`` fault) is deterministic under any policy; real
``SIGKILL`` durability of committed rounds needs ``"round"`` or better.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.state.delta import StateDelta, apply_deltas, delta_from_payload, delta_payload
from repro.state.model import NetworkState
from repro.state.serialize import state_from_payload, state_to_payload

FSYNC_POLICIES = ("always", "round", "never")

_CHECKPOINT_PREFIX = "checkpoint-"
_SEGMENT_PREFIX = "wal-"


class RecoveryError(RuntimeError):
    """The journal is damaged beyond a recoverable torn tail."""


class ControllerCrash(RuntimeError):
    """A simulated controller process death (``controller.crash`` fault).

    Raised out of :meth:`DynamicCapacityController._commit_round` at the
    configured seam; harnesses catch it, drop the controller, and prove
    that :func:`recover` + resume reproduces the uninterrupted run.
    """

    def __init__(self, round_index: int, seam: str):
        super().__init__(f"controller crashed at round {round_index} ({seam})")
        self.round_index = round_index
        self.seam = seam


# -- frame codec -------------------------------------------------------


def encode_frame(obj: Mapping[str, Any]) -> bytes:
    """One journal record as a length+CRC framed canonical-JSON line."""
    data = json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()
    return b"%d:%08x:%s\n" % (len(data), zlib.crc32(data), data)


def iter_frames(raw: bytes) -> tuple[list[dict[str, Any]], int]:
    """Decode consecutive frames; returns ``(records, clean_length)``.

    ``clean_length`` is the byte offset of the first damaged or
    incomplete frame — everything past it is a torn tail.  Damage is
    *any* framing violation: short header, non-numeric length, CRC
    mismatch, missing newline.  Parsing never raises; the caller
    decides whether a torn tail is acceptable (newest segment) or
    corruption (interior segment).
    """
    records: list[dict[str, Any]] = []
    offset = 0
    n = len(raw)
    while offset < n:
        head = raw.find(b":", offset, offset + 21)
        if head < 0:
            break
        try:
            length = int(raw[offset:head])
        except ValueError:
            break
        if length < 0:
            break
        crc_end = head + 9
        body_start = crc_end + 1
        body_end = body_start + length
        if body_end + 1 > n or raw[crc_end : crc_end + 1] != b":":
            break
        try:
            crc = int(raw[head + 1 : crc_end], 16)
        except ValueError:
            break
        body = raw[body_start:body_end]
        if raw[body_end : body_end + 1] != b"\n" or zlib.crc32(body) != crc:
            break
        try:
            records.append(json.loads(body))
        except ValueError:
            break
        offset = body_end + 1
    return records, offset


# -- directory layout --------------------------------------------------


def _checkpoint_path(directory: Path, version: int) -> Path:
    return directory / f"{_CHECKPOINT_PREFIX}{version}.json"


def _segment_path(directory: Path, version: int) -> Path:
    return directory / f"{_SEGMENT_PREFIX}{version}.jsonl"


def _indexed(directory: Path, prefix: str, suffix: str) -> list[tuple[int, Path]]:
    out = []
    for path in directory.iterdir():
        name = path.name
        if name.startswith(prefix) and name.endswith(suffix):
            try:
                out.append((int(name[len(prefix) : -len(suffix)]), path))
            except ValueError:
                continue
    return sorted(out)


def journal_exists(directory: str | Path) -> bool:
    """Whether ``directory`` holds a journal a run could resume from."""
    directory = Path(directory)
    if not directory.is_dir():
        return False
    return bool(
        _indexed(directory, _CHECKPOINT_PREFIX, ".json")
        or _indexed(directory, _SEGMENT_PREFIX, ".jsonl")
    )


# -- the journal -------------------------------------------------------


class StateJournal:
    """Append-only durable log of one controller run.

    Bound to a :class:`~repro.state.store.StateStore` via
    ``store.attach_journal(journal)``: every state commit appends a
    ``transition`` frame, and the controller seals each round with
    :meth:`commit_round`.  ``checkpoint_every`` counts *round commits*
    between full-state checkpoints.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        checkpoint_every: int = 8,
        fsync: str = "round",
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r} (valid: {FSYNC_POLICIES})"
            )
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.checkpoint_every = checkpoint_every
        self.fsync = fsync
        self.last_version: int | None = None  # newest journaled transition
        self._segment_version = 0  # checkpoint version the segment extends
        self._rounds_since_checkpoint = 0
        self._file: Any | None = None
        self._n_rounds = 0

    # -- segment management -------------------------------------------

    def _open_segment(self, version: int, *, truncate_at: int | None = None) -> None:
        self._close_segment()
        path = _segment_path(self.directory, version)
        if truncate_at is not None and path.exists():
            with open(path, "r+b") as handle:
                handle.truncate(truncate_at)
        self._file = open(path, "ab")
        self._segment_version = version

    def _close_segment(self) -> None:
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            self._file = None

    def close(self) -> None:
        """Flush and close the active segment (idempotent)."""
        self._close_segment()

    def __enter__(self) -> "StateJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _append(self, frame: bytes, *, sync: bool) -> None:
        if self._file is None:
            self._open_segment(self._segment_version)
        self._file.write(frame)
        self._file.flush()
        if sync:
            os.fsync(self._file.fileno())

    # -- writing -------------------------------------------------------

    def start(self, state: NetworkState, *, round_index: int = 0) -> None:
        """Seed a fresh journal with checkpoint-0 of the base state."""
        self._write_checkpoint(state, round_index)
        self._open_segment(state.version)

    def append_transition(
        self,
        version: int,
        parent: int | None,
        label: str,
        deltas: list[StateDelta],
    ) -> None:
        """Journal one state commit (the :class:`StateStore` hook)."""
        frame = encode_frame(
            {
                "t": "transition",
                "version": version,
                "parent": parent,
                "label": label,
                "deltas": [delta_payload(d) for d in deltas],
            }
        )
        self._append(frame, sync=self.fsync == "always")
        self.last_version = version
        _metrics.counter("journal.transitions").inc()

    def commit_round(self, payload: Mapping[str, Any]) -> None:
        """Seal a round: the durability point for everything before it."""
        frame = encode_frame({"t": "round", **payload})
        self._append(frame, sync=self.fsync in ("always", "round"))
        self._n_rounds += 1
        _metrics.counter("journal.rounds").inc()

    def write_torn_round(self, payload: Mapping[str, Any]) -> None:
        """Write a deliberately torn round frame (the mid-write seam).

        Roughly the first two thirds of the frame reach the disk —
        enough to be non-trivially damaged, never a valid frame — and
        the bytes are fsynced so recovery faces a genuinely torn tail.
        """
        frame = encode_frame({"t": "round", **payload})
        self._append(frame[: max(3, len(frame) * 2 // 3)], sync=True)

    def maybe_checkpoint(self, state: NetworkState, round_index: int) -> bool:
        """Checkpoint + roll the segment every ``checkpoint_every`` rounds."""
        self._rounds_since_checkpoint += 1
        if self._rounds_since_checkpoint < self.checkpoint_every:
            return False
        self._rounds_since_checkpoint = 0
        self._write_checkpoint(state, round_index)
        self._open_segment(state.version)
        _metrics.counter("journal.checkpoints").inc()
        _trace.point(
            "journal.checkpoint", version=state.version, round=round_index
        )
        return True

    def _write_checkpoint(self, state: NetworkState, round_index: int) -> None:
        payload = {
            "schema": 1,
            "generated_unix": _metrics.timestamp_unix(),
            "round": round_index,
            "state": state_to_payload(state),
        }
        final = _checkpoint_path(self.directory, state.version)
        tmp = final.with_suffix(".json.tmp")
        data = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)

    # -- reading -------------------------------------------------------

    def iter_transitions(self) -> Iterator[dict[str, Any]]:
        """Every journaled transition, oldest first (timeline schema).

        Reads the segments straight off disk — flush the active one
        first so the in-flight tail is visible.
        """
        if self._file is not None:
            self._file.flush()
        for _, path in _indexed(self.directory, _SEGMENT_PREFIX, ".jsonl"):
            records, _ = iter_frames(path.read_bytes())
            for record in records:
                if record.get("t") == "transition":
                    yield {
                        "version": record["version"],
                        "parent": record["parent"],
                        "label": record["label"],
                        "deltas": record["deltas"],
                    }


# -- recovery ----------------------------------------------------------


@dataclass
class RecoveredRun:
    """Everything :func:`recover` pulled back out of a journal.

    ``state`` is the last *committed* state (transitions covered by a
    round frame); ``rounds`` the full ordered list of committed round
    payloads; ``transitions`` the committed transition records (for
    lineage checks and timeline rebuilds).  ``n_discarded_transitions``
    counts rolled-back frames from a half-done round and
    ``torn_tail_bytes`` how many damaged bytes were dropped from the
    newest segment; ``resume_offset`` is the byte length of the clean
    committed prefix of the newest segment (where an appender must
    truncate before continuing).
    """

    state: NetworkState
    checkpoint_version: int
    checkpoint_round: int
    rounds: list[dict[str, Any]] = field(default_factory=list)
    transitions: list[dict[str, Any]] = field(default_factory=list)
    n_discarded_transitions: int = 0
    torn_tail_bytes: int = 0
    resume_offset: int = 0

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def last_round(self) -> dict[str, Any] | None:
        return self.rounds[-1] if self.rounds else None


def _load_checkpoint(path: Path) -> dict[str, Any] | None:
    try:
        payload = json.loads(path.read_bytes())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("schema") != 1:
        return None
    if "state" not in payload or "round" not in payload:
        return None
    return payload


def recover(directory: str | Path) -> RecoveredRun:
    """Rebuild the last committed state from a journal directory.

    Loads the newest checkpoint that parses (corrupt ones fall back to
    older, replaying across more segments), walks every WAL segment in
    order, applies committed transitions bit-for-bit via
    :func:`apply_deltas`, and truncates a torn tail on the newest
    segment.  Interior damage — a torn frame in any segment that is
    not the newest — is unrecoverable and raises
    :class:`RecoveryError`, as is a broken version chain.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise RecoveryError(f"no journal at {directory}")
    checkpoints = _indexed(directory, _CHECKPOINT_PREFIX, ".json")
    segments = _indexed(directory, _SEGMENT_PREFIX, ".jsonl")
    if not checkpoints:
        raise RecoveryError(f"no checkpoint in {directory}")

    checkpoint = None
    checkpoint_version = -1
    for version, path in reversed(checkpoints):
        payload = _load_checkpoint(path)
        if payload is not None:
            checkpoint, checkpoint_version = payload, version
            break
    if checkpoint is None:
        raise RecoveryError(f"every checkpoint in {directory} is corrupt")

    state = state_from_payload(checkpoint["state"])
    if state.version != checkpoint_version:
        raise RecoveryError(
            f"checkpoint {checkpoint_version} holds state v{state.version}"
        )
    out = RecoveredRun(
        state=state,
        checkpoint_version=checkpoint_version,
        checkpoint_round=int(checkpoint["round"]),
    )

    newest_segment = segments[-1][0] if segments else None
    for segment_version, path in segments:
        raw = path.read_bytes()
        records, clean = iter_frames(raw)
        if clean < len(raw):
            if segment_version != newest_segment:
                raise RecoveryError(
                    f"torn frame inside interior segment {path.name} "
                    f"(offset {clean})"
                )
            out.torn_tail_bytes = len(raw) - clean

        # Transitions commit only when a round frame follows them; a
        # trailing unterminated group is a half-done round to roll back.
        pending: list[dict[str, Any]] = []
        committed_offset = 0
        offset = 0
        for record in records:
            offset += len(encode_frame(record))
            kind = record.get("t")
            if kind == "transition":
                pending.append(record)
            elif kind == "round":
                for t in pending:
                    _apply_recovered_transition(out, t, segment_version)
                pending.clear()
                out.rounds.append(
                    {k: v for k, v in record.items() if k != "t"}
                )
                committed_offset = offset
            else:
                raise RecoveryError(
                    f"unknown record kind {kind!r} in {path.name}"
                )
        if pending:
            if segment_version != newest_segment:
                raise RecoveryError(
                    f"uncommitted transitions inside interior segment "
                    f"{path.name}"
                )
            out.n_discarded_transitions += len(pending)
        if segment_version == newest_segment:
            out.resume_offset = committed_offset

    rounds_sorted = sorted(r["round"] for r in out.rounds)
    if rounds_sorted != list(range(len(out.rounds))):
        raise RecoveryError(
            f"round sequence has gaps or duplicates: {rounds_sorted}"
        )
    _trace.point(
        "journal.recover",
        version=out.state.version,
        rounds=out.n_rounds,
        discarded=out.n_discarded_transitions,
        torn_bytes=out.torn_tail_bytes,
    )
    return out


def _apply_recovered_transition(
    out: RecoveredRun, record: Mapping[str, Any], segment_version: int
) -> None:
    if record["version"] <= out.checkpoint_version:
        # an older segment overlapping the checkpoint: already included
        out.transitions.append(dict(record))
        return
    if record["parent"] != out.state.version:
        raise RecoveryError(
            f"broken version chain in segment {segment_version}: "
            f"transition v{record['version']} claims parent "
            f"v{record['parent']}, journal is at v{out.state.version}"
        )
    deltas = [delta_from_payload(p) for p in record["deltas"]]
    out.state = apply_deltas(
        out.state, deltas, label=record["label"], version=record["version"]
    )
    out.transitions.append(dict(record))


def reopen(directory: str | Path, **kwargs: Any) -> tuple[StateJournal, RecoveredRun]:
    """Recover a journal and return an appender positioned after it.

    The newest segment is physically truncated at the last
    committed-round byte offset, so a resumed run re-executing the
    rolled-back round cannot leave duplicate versions behind.  Handles
    the crash window between a checkpoint write and its segment roll
    (the new segment may not exist yet — it is simply created).
    """
    recovered = recover(directory)
    journal = StateJournal(directory, **kwargs)
    journal.last_version = recovered.state.version
    journal._n_rounds = recovered.n_rounds
    segments = _indexed(Path(directory), _SEGMENT_PREFIX, ".jsonl")
    newest = segments[-1][0] if segments else recovered.checkpoint_version
    if newest < recovered.checkpoint_version:
        # crashed after checkpoint write, before the segment roll
        newest = recovered.checkpoint_version
        journal._open_segment(newest)
    else:
        journal._open_segment(newest, truncate_at=recovered.resume_offset)
    journal._rounds_since_checkpoint = (
        recovered.n_rounds - recovered.checkpoint_round
    )
    return journal, recovered
