"""``repro.recovery`` — crash tolerance for the control plane.

Three pieces turn the controller from a process that loses everything
on death into one that resumes mid-round, bit-for-bit:

* :class:`StateJournal` / :func:`recover` / :func:`reopen` — a durable
  write-ahead log of every state transition (length+CRC framed
  canonical JSONL, round frames as commit points, atomic full-state
  checkpoints every K rounds) and the recovery path that replays it,
  truncating torn tails (:mod:`repro.recovery.journal`);
* :func:`report_payload` / :func:`restore_report` — round frames carry
  the full :class:`ControllerReport` so a resumed run hands back the
  complete per-round history (:mod:`repro.recovery.reports`);
* :class:`InvariantMonitor` — runtime safety invariants (BER
  feasibility, no stale restores, monotonic versions, journal/store
  lineage agreement) with record/degrade/abort policies
  (:mod:`repro.recovery.invariants`).

Layering: imports state + obs (and, lazily, the controller's report
types when *restoring*); the controller imports this package, never
the other way around at module level.
"""

from repro.recovery.invariants import (
    InvariantMonitor,
    InvariantViolation,
    InvariantViolationError,
)
from repro.recovery.journal import (
    ControllerCrash,
    RecoveredRun,
    RecoveryError,
    StateJournal,
    encode_frame,
    iter_frames,
    journal_exists,
    recover,
    reopen,
)
from repro.recovery.reports import (
    RestoredSolution,
    report_payload,
    restore_report,
    restore_solution,
    solution_payload,
)

__all__ = [
    "ControllerCrash",
    "InvariantMonitor",
    "InvariantViolation",
    "InvariantViolationError",
    "RecoveredRun",
    "RecoveryError",
    "RestoredSolution",
    "StateJournal",
    "encode_frame",
    "iter_frames",
    "journal_exists",
    "recover",
    "reopen",
    "report_payload",
    "restore_report",
    "restore_solution",
    "solution_payload",
]
