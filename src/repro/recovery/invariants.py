"""Runtime safety invariants over the live control loop.

:class:`InvariantMonitor` is an engine *observer*: it rides every
per-round report event (``controller.report`` from the plain replay,
``te.round`` / ``te.emergency`` from the reaction simulator) and checks
the controller's committed state against four invariants that must hold
in any correct run, faulted or not:

* **ber** — no link is configured above the capacity its latest SNR
  reading supports (the BER-feasibility contract the adaptation policy
  exists to keep);
* **stale-restore** — no round reports a link both restored *and*
  decided on stale telemetry (a dark link must never relight on a held
  or fallen-back reading);
* **version-chain** — the state lineage's version strictly increases
  and every snapshot's parent precedes it (a rewind or fork in the
  authoritative record means two components disagree about history);
* **journal-lineage** — the durable journal's newest transition matches
  the in-memory store's (a divergence means a crash now would recover a
  *different* network than the one being operated).

What a violation *does* is the ``policy``: ``"record"`` traces and
counts it, ``"degrade"`` additionally forces BER-violating links down
to their feasible capacity, ``"abort"`` stops the engine and marks the
monitor :attr:`fatal` (the simulators then raise
:class:`InvariantViolationError` — observers themselves cannot raise,
the kernel isolates them).  Every violation emits an
``invariant.violation`` trace point and an ``invariants.violations``
counter, which ``run_summary`` surfaces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

POLICIES = ("record", "degrade", "abort")

#: event kinds whose payload is one round's ControllerReport
REPORT_KINDS = frozenset({"controller.report", "te.round", "te.emergency"})


@dataclass(frozen=True)
class InvariantViolation:
    """One detected breach: which invariant, where, and the evidence."""

    invariant: str
    link_id: str | None
    detail: str

    def payload(self) -> dict[str, Any]:
        return {
            "invariant": self.invariant,
            "link_id": self.link_id,
            "detail": self.detail,
        }


class InvariantViolationError(RuntimeError):
    """An ``abort``-policy monitor stopped the run."""

    def __init__(self, violations: tuple[InvariantViolation, ...]):
        first = violations[0]
        super().__init__(
            f"invariant {first.invariant!r} violated: {first.detail} "
            f"({len(violations)} violation(s) total)"
        )
        self.violations = violations


class InvariantMonitor:
    """Engine observer enforcing the runtime safety invariants.

    Attach with ``engine.add_observer(monitor)`` after binding the
    controller; zero-cost for event kinds outside
    :data:`REPORT_KINDS`.
    """

    def __init__(self, controller: Any, *, policy: str = "record"):
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r} (valid: {POLICIES})")
        self.controller = controller
        self.policy = policy
        self.violations: list[InvariantViolation] = []
        #: set when an ``abort`` fired; the hosting simulator raises
        self.fatal = False
        self._engine: Any | None = None
        self._last_version: int | None = None

    def attach(self, engine: Any) -> "InvariantMonitor":
        """Register on ``engine`` (kept for the abort policy's stop)."""
        self._engine = engine
        engine.add_observer(self)
        return self

    def __call__(self, event: Any) -> None:
        if event.kind not in REPORT_KINDS or self.fatal:
            return
        # the plain replay's scheduled "te.round" events carry the
        # telemetry *sample*; only payloads that are reports (its
        # published "controller.report", the reaction simulator's
        # round notifications) trigger a check
        report = event.payload
        if not hasattr(report, "restored_links"):
            return
        self.check_round(report)

    # -- the checks ----------------------------------------------------

    def check_round(self, report: Any) -> None:
        """Run every invariant against the post-round committed state."""
        found: list[InvariantViolation] = []
        found.extend(self._check_ber())
        found.extend(self._check_stale_restore(report))
        found.extend(self._check_version_chain())
        found.extend(self._check_journal_lineage())
        if found:
            self._react(found)

    def _check_ber(self) -> list[InvariantViolation]:
        controller = self.controller
        table = controller.table
        out = []
        for link_id, link in controller.state.links.items():
            snr = link.snr_db
            if link.capacity_gbps <= 0 or snr is None or math.isnan(snr):
                continue
            feasible = table.feasible_capacity(snr)
            if link.capacity_gbps > feasible + 1e-9:
                out.append(
                    InvariantViolation(
                        "ber",
                        link_id,
                        f"configured {link.capacity_gbps:g} Gbps above the "
                        f"{feasible:g} Gbps its SNR {snr:.2f} dB supports",
                    )
                )
        return out

    def _check_stale_restore(self, report: Any) -> list[InvariantViolation]:
        if report is None:
            return []
        overlap = set(report.restored_links) & set(report.stale_links)
        return [
            InvariantViolation(
                "stale-restore",
                link_id,
                "link restored in a round that decided it on stale telemetry",
            )
            for link_id in sorted(overlap)
        ]

    def _check_version_chain(self) -> list[InvariantViolation]:
        latest = self.controller.state
        out = []
        if self._last_version is not None and latest.version < self._last_version:
            out.append(
                InvariantViolation(
                    "version-chain",
                    None,
                    f"state rewound from v{self._last_version} "
                    f"to v{latest.version}",
                )
            )
        if (
            latest.parent_version is not None
            and latest.parent_version >= latest.version
        ):
            out.append(
                InvariantViolation(
                    "version-chain",
                    None,
                    f"v{latest.version} claims parent "
                    f"v{latest.parent_version}",
                )
            )
        self._last_version = latest.version
        return out

    def _check_journal_lineage(self) -> list[InvariantViolation]:
        journal = self.controller.state_store.journal
        if journal is None or journal.last_version is None:
            return []
        store_version = self.controller.state.version
        if journal.last_version != store_version:
            return [
                InvariantViolation(
                    "journal-lineage",
                    None,
                    f"journal is at v{journal.last_version}, "
                    f"store at v{store_version}",
                )
            ]
        return []

    # -- reacting ------------------------------------------------------

    def _react(self, found: list[InvariantViolation]) -> None:
        for violation in found:
            self.violations.append(violation)
            _metrics.counter(
                "invariants.violations", invariant=violation.invariant
            ).inc()
            _trace.point(
                "invariant.violation", policy=self.policy, **violation.payload()
            )
        if self.policy == "degrade":
            self._degrade(found)
        elif self.policy == "abort":
            self.fatal = True
            if self._engine is not None:
                self._engine.stop()

    def _degrade(self, found: list[InvariantViolation]) -> None:
        controller = self.controller
        for violation in found:
            if violation.invariant != "ber" or violation.link_id is None:
                continue
            link = controller.state.links[violation.link_id]
            feasible = controller.table.feasible_capacity(link.snr_db)
            controller.enforce_capacity(
                violation.link_id, feasible, label="invariant.degrade"
            )

    def raise_if_fatal(self) -> None:
        """Raise :class:`InvariantViolationError` after an abort."""
        if self.fatal:
            raise InvariantViolationError(tuple(self.violations))
