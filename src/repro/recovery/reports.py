"""Round-frame payloads: ``ControllerReport`` in, ``ControllerReport`` out.

Every committed round journals its report so a resumed run can hand the
caller the *complete* per-round history — the arrays a
:class:`~repro.sim.replay.ReplayResult` is built from must cover the
rounds the crashed process executed, not just the ones the survivor
re-runs.

Solutions are journaled as their *consumed surface*, not the full LP
output: everything downstream of a report reads only
``total_allocated_gbps`` and ``link_flow(link_id)`` (throughput
accounting, next-round disruption penalties, reactive lag charges), so
:class:`RestoredSolution` carries exactly the flow totals and answers
those two bit-for-bit.  Restored reports therefore reproduce every
number the simulators and golden canonicalisations derive, without
persisting per-demand flow assignments.
"""

from __future__ import annotations

from typing import Any, Mapping


class RestoredSolution:
    """A journaled TE solution: flow totals without the LP internals.

    Duck-types the slice of :class:`~repro.te.solution.TeSolution` the
    control loop and the simulators consume after a round has committed:
    ``total_allocated_gbps`` and ``link_flow``.
    """

    __slots__ = ("total_allocated_gbps", "_link_flow")

    def __init__(self, total_allocated_gbps: float, link_flow: Mapping[str, float]):
        self.total_allocated_gbps = total_allocated_gbps
        self._link_flow = dict(link_flow)

    def link_flow(self, link_id: str) -> float:
        return self._link_flow.get(link_id, 0.0)

    def __repr__(self) -> str:
        return (
            f"RestoredSolution(allocated={self.total_allocated_gbps:.1f} Gbps, "
            f"links={len(self._link_flow)})"
        )


def solution_payload(solution: Any) -> dict[str, Any]:
    """One TE solution (real or restored) as a plain-JSON dict."""
    return {
        "total_allocated_gbps": solution.total_allocated_gbps,
        "link_flow": dict(solution._link_flow),
    }


def restore_solution(payload: Mapping[str, Any]) -> RestoredSolution:
    return RestoredSolution(
        payload["total_allocated_gbps"], payload["link_flow"]
    )


def report_payload(report: Any) -> dict[str, Any]:
    """One :class:`ControllerReport` as a plain-JSON dict."""
    return {
        "solution": solution_payload(report.solution),
        "upgrades": [
            {
                "link_id": u.link_id,
                "old_capacity_gbps": u.old_capacity_gbps,
                "new_capacity_gbps": u.new_capacity_gbps,
                "headroom_used_gbps": u.headroom_used_gbps,
                "disrupted_traffic_gbps": u.disrupted_traffic_gbps,
            }
            for u in report.upgrades
        ],
        "downgrades": [
            {
                "link_id": d.link_id,
                "old_capacity_gbps": d.old_capacity_gbps,
                "new_capacity_gbps": d.new_capacity_gbps,
            }
            for d in report.downgrades
        ],
        "failed_links": list(report.failed_links),
        "restored_links": list(report.restored_links),
        "reconfiguration_downtime_s": report.reconfiguration_downtime_s,
        "traffic_disrupted_gbps": report.traffic_disrupted_gbps,
        "interim_solution": (
            None
            if report.interim_solution is None
            else solution_payload(report.interim_solution)
        ),
        "n_reconfiguration_batches": report.n_reconfiguration_batches,
        "n_retries": report.n_retries,
        "retry_backoff_s": report.retry_backoff_s,
        "reconfig_failed_links": list(report.reconfig_failed_links),
        "te_fallback": report.te_fallback,
        "stale_links": list(report.stale_links),
        "fault_capacity_loss_gbps": report.fault_capacity_loss_gbps,
        "ber_violations": list(report.ber_violations),
    }


def restore_report(payload: Mapping[str, Any]) -> Any:
    """The inverse of :func:`report_payload`.

    Imports lazily: this module sits below the controller in the
    layering (the journal must not pull the control loop in), the
    restored *object* is the controller's own report type.
    """
    from repro.core.controller import ControllerReport, LinkDowngrade
    from repro.core.translation import LinkUpgrade

    return ControllerReport(
        solution=restore_solution(payload["solution"]),
        upgrades=tuple(
            LinkUpgrade(
                link_id=u["link_id"],
                old_capacity_gbps=u["old_capacity_gbps"],
                new_capacity_gbps=u["new_capacity_gbps"],
                headroom_used_gbps=u["headroom_used_gbps"],
                disrupted_traffic_gbps=u["disrupted_traffic_gbps"],
            )
            for u in payload["upgrades"]
        ),
        downgrades=tuple(
            LinkDowngrade(
                link_id=d["link_id"],
                old_capacity_gbps=d["old_capacity_gbps"],
                new_capacity_gbps=d["new_capacity_gbps"],
            )
            for d in payload["downgrades"]
        ),
        failed_links=tuple(payload["failed_links"]),
        restored_links=tuple(payload["restored_links"]),
        reconfiguration_downtime_s=payload["reconfiguration_downtime_s"],
        traffic_disrupted_gbps=payload["traffic_disrupted_gbps"],
        interim_solution=(
            None
            if payload["interim_solution"] is None
            else restore_solution(payload["interim_solution"])
        ),
        n_reconfiguration_batches=payload["n_reconfiguration_batches"],
        n_retries=payload["n_retries"],
        retry_backoff_s=payload["retry_backoff_s"],
        reconfig_failed_links=tuple(payload["reconfig_failed_links"]),
        te_fallback=payload["te_fallback"],
        stale_links=tuple(payload["stale_links"]),
        fault_capacity_loss_gbps=payload["fault_capacity_loss_gbps"],
        ber_violations=tuple(payload["ber_violations"]),
    )
