"""Optical physical-layer substrate.

This package models the pieces of an optical line system that the paper's
measurement study and testbed rely on:

* unit conversions between decibel and linear domains (:mod:`~repro.optics.units`),
* the modulation-format ladder with its required-SNR thresholds
  (:mod:`~repro.optics.modulation`),
* ideal and noisy signal constellations (:mod:`~repro.optics.constellation`),
* a span/amplifier noise budget that produces realistic baseline SNRs
  (:mod:`~repro.optics.fiber`),
* SNR bookkeeping and feasible-capacity lookups (:mod:`~repro.optics.snr`),
* parametric impairment events (:mod:`~repro.optics.impairments`).
"""

from repro.optics.units import (
    db_to_linear,
    linear_to_db,
    dbm_to_watts,
    watts_to_dbm,
)
from repro.optics.modulation import (
    ModulationFormat,
    ModulationTable,
    DEFAULT_MODULATIONS,
    LOSS_OF_LIGHT_SNR_DB,
)
from repro.optics.constellation import Constellation, ConstellationSample
from repro.optics.fiber import FiberSpan, Amplifier, FiberCable, LineSystem
from repro.optics.snr import SnrBudget, feasible_capacity_gbps, required_snr_db
from repro.optics.impairments import (
    Impairment,
    AmplifierDegradation,
    FiberCut,
    MaintenanceDisruption,
    TransceiverFault,
)
from repro.optics.spectrum import Channel, ChannelPlan, SpectrumAssignment
from repro.optics.ber import (
    derive_modulation_table,
    required_snr_for_ser,
    ser_for_format,
    ser_mpsk,
    ser_mqam,
)

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "ModulationFormat",
    "ModulationTable",
    "DEFAULT_MODULATIONS",
    "LOSS_OF_LIGHT_SNR_DB",
    "Constellation",
    "ConstellationSample",
    "FiberSpan",
    "Amplifier",
    "FiberCable",
    "LineSystem",
    "SnrBudget",
    "feasible_capacity_gbps",
    "required_snr_db",
    "Impairment",
    "AmplifierDegradation",
    "FiberCut",
    "MaintenanceDisruption",
    "TransceiverFault",
    "Channel",
    "ChannelPlan",
    "SpectrumAssignment",
    "derive_modulation_table",
    "required_snr_for_ser",
    "ser_for_format",
    "ser_mpsk",
    "ser_mqam",
]
