"""The modulation-format ladder and its required-SNR thresholds.

The paper's hardware exposes five capacity denominations per wavelength —
100, 125, 150, 175 and 200 Gbps — plus a degraded 50 Gbps fallback used in
the availability analysis (Section 2.2).  Each denomination requires a
minimum SNR; the paper prints two anchors:

* 100 Gbps requires 6.5 dB (Section 2.1), and
* 50 Gbps requires 3.0 dB (Section 2.2).

The remaining thresholds are "specific to our hardware, fiber length,
fiber type, and wavelength" and are not printed.  We interpolate them on
the standard coherent-DSP ladder: at a fixed symbol rate, each step of
~0.5 bit/symbol/polarisation costs roughly 2 dB of SNR in this regime,
which both reproduces the two printed anchors and produces the capacity
CDF shape of Figure 2b.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

#: Sentinel SNR (dB) reported by a receiver that sees no light at all.
#: Matches :data:`repro.optics.units.DB_FLOOR`.
LOSS_OF_LIGHT_SNR_DB = -60.0


@dataclass(frozen=True, order=True)
class ModulationFormat:
    """One rung of the bandwidth-variable transceiver's capacity ladder.

    Attributes:
        capacity_gbps: line rate delivered to the IP layer.
        required_snr_db: minimum SNR at which the format closes with the
            line system's FEC; below this the link is unusable at this
            rate.
        name: marketing/DSP name of the constellation (e.g. ``"16QAM"``).
        bits_per_symbol: information bits per symbol per polarisation
            (after FEC overhead), used by the constellation module.
    """

    capacity_gbps: float
    required_snr_db: float
    name: str = field(compare=False, default="")
    bits_per_symbol: float = field(compare=False, default=2.0)

    def supports(self, snr_db: float) -> bool:
        """Return True if a signal at ``snr_db`` can carry this format."""
        return snr_db >= self.required_snr_db


def _default_formats() -> tuple[ModulationFormat, ...]:
    return (
        ModulationFormat(50.0, 3.0, name="BPSK", bits_per_symbol=1.0),
        ModulationFormat(100.0, 6.5, name="QPSK", bits_per_symbol=2.0),
        ModulationFormat(125.0, 8.5, name="8QAM-hybrid", bits_per_symbol=2.5),
        ModulationFormat(150.0, 10.5, name="8QAM", bits_per_symbol=3.0),
        ModulationFormat(175.0, 12.5, name="16QAM-hybrid", bits_per_symbol=3.5),
        ModulationFormat(200.0, 14.5, name="16QAM", bits_per_symbol=4.0),
    )


class ModulationTable:
    """An ordered, queryable ladder of :class:`ModulationFormat` entries.

    The table answers the two questions the rest of the system asks:

    * *feasibility*: the fastest format a given SNR supports
      (:meth:`best_for_snr`), and
    * *thresholds*: the SNR a given capacity requires
      (:meth:`required_snr`).

    Formats must have strictly increasing capacity and strictly increasing
    required SNR — a faster format that needed less SNR would make the
    slower one pointless and usually indicates a typo in a config.
    """

    def __init__(self, formats: Iterable[ModulationFormat] | None = None):
        entries = tuple(sorted(formats if formats is not None else _default_formats()))
        if not entries:
            raise ValueError("a modulation table needs at least one format")
        for lo, hi in zip(entries, entries[1:]):
            if hi.capacity_gbps <= lo.capacity_gbps:
                raise ValueError(
                    f"duplicate or non-increasing capacity: "
                    f"{lo.capacity_gbps} then {hi.capacity_gbps}"
                )
            if hi.required_snr_db <= lo.required_snr_db:
                raise ValueError(
                    f"required SNR must increase with capacity: "
                    f"{hi.capacity_gbps} Gbps needs {hi.required_snr_db} dB "
                    f"but {lo.capacity_gbps} Gbps needs {lo.required_snr_db} dB"
                )
        self._formats = entries
        self._thresholds = [f.required_snr_db for f in entries]
        self._by_capacity = {f.capacity_gbps: f for f in entries}

    def __iter__(self) -> Iterator[ModulationFormat]:
        return iter(self._formats)

    def __len__(self) -> int:
        return len(self._formats)

    def __repr__(self) -> str:
        rungs = ", ".join(
            f"{f.capacity_gbps:g}G@{f.required_snr_db:g}dB" for f in self._formats
        )
        return f"ModulationTable({rungs})"

    @property
    def formats(self) -> Sequence[ModulationFormat]:
        return self._formats

    @property
    def capacities_gbps(self) -> tuple[float, ...]:
        return tuple(f.capacity_gbps for f in self._formats)

    @property
    def min_capacity_gbps(self) -> float:
        return self._formats[0].capacity_gbps

    @property
    def max_capacity_gbps(self) -> float:
        return self._formats[-1].capacity_gbps

    def format_for_capacity(self, capacity_gbps: float) -> ModulationFormat:
        """Return the format carrying exactly ``capacity_gbps``.

        Raises :class:`KeyError` for capacities not on the ladder; callers
        that want "the best format not exceeding c" should iterate.
        """
        try:
            return self._by_capacity[capacity_gbps]
        except KeyError:
            raise KeyError(
                f"no modulation format with capacity {capacity_gbps} Gbps; "
                f"ladder is {self.capacities_gbps}"
            ) from None

    def required_snr(self, capacity_gbps: float) -> float:
        """SNR (dB) needed to run at ``capacity_gbps``."""
        return self.format_for_capacity(capacity_gbps).required_snr_db

    def best_for_snr(self, snr_db: float) -> ModulationFormat | None:
        """Fastest format supported at ``snr_db``, or None below the ladder.

        A None return is the "link is down" case: the signal cannot close
        even at the slowest rate.
        """
        # thresholds are sorted ascending; find rightmost threshold <= snr.
        idx = bisect.bisect_right(self._thresholds, snr_db) - 1
        if idx < 0:
            return None
        return self._formats[idx]

    def feasible_capacity(self, snr_db: float) -> float:
        """Fastest feasible capacity (Gbps) at ``snr_db``; 0.0 if down."""
        best = self.best_for_snr(snr_db)
        return best.capacity_gbps if best is not None else 0.0

    def headroom_above(self, capacity_gbps: float, snr_db: float) -> float:
        """Extra capacity (Gbps) available beyond ``capacity_gbps`` at ``snr_db``.

        This is the quantity Algorithm 1 writes into its ``U`` matrix.
        Never negative: if the SNR cannot even sustain the current
        capacity the headroom is zero (the *reduction* path is handled by
        the augmentation layer removing fake links, per Section 4.2).
        """
        return max(self.feasible_capacity(snr_db) - capacity_gbps, 0.0)

    def upgrade_steps(
        self, capacity_gbps: float, snr_db: float
    ) -> tuple[ModulationFormat, ...]:
        """All ladder rungs strictly above ``capacity_gbps`` feasible at ``snr_db``."""
        return tuple(
            f
            for f in self._formats
            if f.capacity_gbps > capacity_gbps and f.supports(snr_db)
        )


#: The ladder used throughout the reproduction unless a caller overrides it.
DEFAULT_MODULATIONS = ModulationTable()
