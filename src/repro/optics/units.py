"""Decibel and power unit conversions used across the optical substrate.

The telemetry pipeline mixes decibel quantities (SNR, gain, attenuation)
with linear quantities (noise powers that add, signal powers that are
attenuated multiplicatively).  Keeping the conversions in one module keeps
the rest of the codebase honest about which domain a number lives in.
"""

from __future__ import annotations

import math
from typing import overload

import numpy as np

#: Floor used when converting a non-positive linear ratio to dB.  A signal
#: with zero (or numerically negative) power has no meaningful SNR; we map
#: it to this sentinel instead of ``-inf`` so downstream statistics stay
#: finite.  -60 dB is far below any modulation threshold in the system.
DB_FLOOR = -60.0


@overload
def db_to_linear(value_db: float) -> float: ...
@overload
def db_to_linear(value_db: np.ndarray) -> np.ndarray: ...


def db_to_linear(value_db):
    """Convert a decibel power ratio to a linear power ratio.

    >>> db_to_linear(3.0103)  # doctest: +ELLIPSIS
    2.000...
    """
    if isinstance(value_db, np.ndarray):
        return np.power(10.0, value_db / 10.0)
    return 10.0 ** (value_db / 10.0)


@overload
def linear_to_db(value: float, *, floor_db: float = DB_FLOOR) -> float: ...
@overload
def linear_to_db(value: np.ndarray, *, floor_db: float = DB_FLOOR) -> np.ndarray: ...


def linear_to_db(value, *, floor_db: float = DB_FLOOR):
    """Convert a linear power ratio to decibels.

    Non-positive inputs are clamped to ``floor_db`` rather than producing
    ``-inf`` or raising, because loss-of-light events legitimately drive
    signal power to zero and the telemetry pipeline must keep going.
    """
    if isinstance(value, np.ndarray):
        out = np.full(value.shape, floor_db, dtype=float)
        positive = value > 0
        out[positive] = 10.0 * np.log10(value[positive])
        return np.maximum(out, floor_db)
    if value <= 0:
        return floor_db
    return max(10.0 * math.log10(value), floor_db)


def dbm_to_watts(power_dbm: float) -> float:
    """Convert absolute power in dBm to watts (0 dBm == 1 mW)."""
    return 1e-3 * 10.0 ** (power_dbm / 10.0)


def watts_to_dbm(power_watts: float) -> float:
    """Convert absolute power in watts to dBm.

    Raises :class:`ValueError` for non-positive powers: unlike ratios,
    an absolute transmit/receive power of zero watts indicates a modelling
    bug, not a physical event we track.
    """
    if power_watts <= 0:
        raise ValueError(f"power must be positive, got {power_watts!r} W")
    return 10.0 * math.log10(power_watts / 1e-3)


def add_powers_db(*values_db: float) -> float:
    """Sum powers expressed in dB (converting through the linear domain).

    Useful for accumulating independent noise contributions:

    >>> round(add_powers_db(-20.0, -20.0), 4)
    -16.9897
    """
    if not values_db:
        raise ValueError("at least one value is required")
    total = sum(db_to_linear(v) for v in values_db)
    return linear_to_db(total)
