"""Signal constellations for the testbed figures (Figure 5).

The paper's Figure 5 shows constellation diagrams captured from the BVT
testbed at 100 Gbps (QPSK), 150 Gbps (8QAM) and 200 Gbps (16QAM).  This
module provides ideal constellation geometries, AWGN sampling at a target
SNR, and the error-vector-magnitude (EVM) / symbol-error statistics a
coherent receiver would report.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.optics.units import db_to_linear, linear_to_db


def _qam_square(order: int) -> list[complex]:
    """Points of a square M-QAM grid, M a perfect even square (4, 16, 64)."""
    side = int(round(math.sqrt(order)))
    if side * side != order or side % 2 != 0:
        raise ValueError(f"{order} is not an even-sided square QAM order")
    levels = [2 * k - (side - 1) for k in range(side)]
    return [complex(i, q) for q in levels for i in levels]


def _psk(order: int) -> list[complex]:
    """Points of an M-PSK ring."""
    return [cmath.exp(2j * math.pi * (k / order + 1 / (2 * order))) for k in range(order)]


def _star_8qam() -> list[complex]:
    """8QAM as two QPSK rings (the geometry coherent DSPs typically use)."""
    inner = [cmath.exp(1j * (math.pi / 4 + k * math.pi / 2)) for k in range(4)]
    outer = [(1 + math.sqrt(3)) * cmath.exp(1j * k * math.pi / 2) for k in range(4)]
    return inner + outer


@dataclass(frozen=True)
class ConstellationSample:
    """Noisy received symbols plus receiver-side quality statistics."""

    symbols: np.ndarray  # complex received samples
    ideal: np.ndarray  # transmitted (ideal) points, aligned with symbols
    evm_percent: float  # RMS error vector magnitude, percent of RMS signal
    symbol_error_rate: float
    measured_snr_db: float

    def __len__(self) -> int:
        return len(self.symbols)


class Constellation:
    """An ideal constellation that can be sampled through an AWGN channel.

    The points are normalised to unit average energy, so an AWGN noise
    power of ``1 / snr_linear`` realises the requested SNR exactly in
    expectation.
    """

    _GEOMETRIES = {
        "BPSK": lambda: [complex(-1, 0), complex(1, 0)],
        "QPSK": lambda: _psk(4),
        "8QAM": _star_8qam,
        "8QAM-hybrid": _star_8qam,
        "16QAM": lambda: _qam_square(16),
        "16QAM-hybrid": lambda: _qam_square(16),
        "64QAM": lambda: _qam_square(64),
    }

    def __init__(self, name: str, points: Sequence[complex] | None = None):
        if points is None:
            try:
                points = self._GEOMETRIES[name]()
            except KeyError:
                raise ValueError(
                    f"unknown constellation {name!r}; "
                    f"known: {sorted(self._GEOMETRIES)}"
                ) from None
        pts = np.asarray(points, dtype=complex)
        if len(pts) < 2:
            raise ValueError("a constellation needs at least two points")
        energy = float(np.mean(np.abs(pts) ** 2))
        self._points = pts / math.sqrt(energy)
        self.name = name

    @property
    def points(self) -> np.ndarray:
        """Unit-average-energy ideal constellation points."""
        return self._points

    @property
    def order(self) -> int:
        return len(self._points)

    @property
    def bits_per_symbol(self) -> float:
        return math.log2(self.order)

    def min_distance(self) -> float:
        """Smallest Euclidean distance between two distinct points."""
        diffs = self._points[:, None] - self._points[None, :]
        dist = np.abs(diffs)
        np.fill_diagonal(dist, np.inf)
        return float(dist.min())

    def sample(
        self,
        n_symbols: int,
        snr_db: float,
        rng: np.random.Generator,
    ) -> ConstellationSample:
        """Transmit ``n_symbols`` uniform random symbols through AWGN.

        Returns the received cloud plus EVM, SER and the SNR measured from
        the realised noise (which converges to ``snr_db`` as n grows).
        """
        if n_symbols <= 0:
            raise ValueError("n_symbols must be positive")
        tx_idx = rng.integers(0, self.order, size=n_symbols)
        tx = self._points[tx_idx]
        noise_power = 1.0 / db_to_linear(snr_db)
        scale = math.sqrt(noise_power / 2.0)
        noise = scale * (
            rng.standard_normal(n_symbols) + 1j * rng.standard_normal(n_symbols)
        )
        rx = tx + noise

        error = rx - tx
        signal_rms = float(np.sqrt(np.mean(np.abs(tx) ** 2)))
        error_rms = float(np.sqrt(np.mean(np.abs(error) ** 2)))
        evm_percent = 100.0 * error_rms / signal_rms

        decided = self.decide(rx)
        ser = float(np.mean(decided != tx_idx))

        realised_noise = float(np.mean(np.abs(error) ** 2))
        measured_snr_db = linear_to_db(1.0 / realised_noise) if realised_noise else 99.0
        return ConstellationSample(
            symbols=rx,
            ideal=tx,
            evm_percent=evm_percent,
            symbol_error_rate=ser,
            measured_snr_db=measured_snr_db,
        )

    def decide(self, received: np.ndarray) -> np.ndarray:
        """Minimum-distance hard decision: indices of the nearest points."""
        rx = np.asarray(received, dtype=complex)
        dist = np.abs(rx[:, None] - self._points[None, :])
        return np.argmin(dist, axis=1)

    def __repr__(self) -> str:
        return f"Constellation({self.name!r}, order={self.order})"
