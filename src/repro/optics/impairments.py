"""Parametric impairment events that move a wavelength's SNR.

Section 2.2 of the paper categorises the things that dent an optical
signal: unplanned events during scheduled maintenance, fiber cuts,
hardware (amplifier/transponder/OXC) failures, and undocumented causes.
Each impairment here knows two things:

* its *scope* — whether it hits one wavelength (a transceiver fault) or a
  whole fiber cable (a cut, an amplifier, maintenance on the line system),
* its *SNR effect* — a dB penalty (possibly total loss of light) applied
  for the event's duration.

The telemetry generator draws these from event processes and superimposes
them on the baseline SNR traces; the ticket generator reuses the same
taxonomy so Figures 4a-4c come from one consistent model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class ImpairmentScope(enum.Enum):
    """Which signals an impairment touches."""

    WAVELENGTH = "wavelength"  # a single IP link
    CABLE = "cable"  # every wavelength on the fiber


class RootCause(enum.Enum):
    """The paper's failure-ticket taxonomy (Section 2.2 / Figure 4)."""

    MAINTENANCE = "maintenance"  # unplanned event during planned work
    FIBER_CUT = "fiber_cut"
    HARDWARE = "hardware"  # amplifier / transponder / OXC failure
    UNDOCUMENTED = "undocumented"

    @property
    def label(self) -> str:
        return {
            RootCause.MAINTENANCE: "Human/maintenance",
            RootCause.FIBER_CUT: "Fiber cut",
            RootCause.HARDWARE: "Hardware failure",
            RootCause.UNDOCUMENTED: "Undocumented",
        }[self]


@dataclass(frozen=True)
class Impairment:
    """Base event: an SNR penalty over a time interval.

    Attributes:
        start_s: event start, seconds from trace origin.
        duration_s: how long the penalty applies.
        snr_penalty_db: dB subtracted from the affected signals' SNR.
            ``float('inf')`` means loss of light.
        scope: wavelength-level or cable-level.
        root_cause: ticket category the event would be filed under.
    """

    start_s: float
    duration_s: float
    snr_penalty_db: float
    scope: ImpairmentScope
    root_cause: RootCause

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("impairment duration must be positive")
        if self.snr_penalty_db < 0:
            raise ValueError("snr penalty must be non-negative dB")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def is_loss_of_light(self) -> bool:
        return not np.isfinite(self.snr_penalty_db)

    def overlaps(self, t0_s: float, t1_s: float) -> bool:
        """True if the event intersects the half-open interval [t0, t1)."""
        return self.start_s < t1_s and self.end_s > t0_s


def AmplifierDegradation(
    start_s: float, duration_s: float, penalty_db: float
) -> Impairment:
    """A failing EDFA: cable-wide partial SNR loss (hardware category)."""
    return Impairment(
        start_s,
        duration_s,
        penalty_db,
        ImpairmentScope.CABLE,
        RootCause.HARDWARE,
    )


def FiberCut(start_s: float, duration_s: float) -> Impairment:
    """A cut: cable-wide loss of light until the splice crew finishes."""
    return Impairment(
        start_s,
        duration_s,
        float("inf"),
        ImpairmentScope.CABLE,
        RootCause.FIBER_CUT,
    )


def MaintenanceDisruption(
    start_s: float,
    duration_s: float,
    penalty_db: float,
    *,
    loss_of_light: bool = False,
) -> Impairment:
    """An unplanned hit during planned maintenance (the paper's top cause)."""
    return Impairment(
        start_s,
        duration_s,
        float("inf") if loss_of_light else penalty_db,
        ImpairmentScope.CABLE,
        RootCause.MAINTENANCE,
    )


def TransceiverFault(
    start_s: float,
    duration_s: float,
    penalty_db: float,
    *,
    root_cause: RootCause = RootCause.HARDWARE,
) -> Impairment:
    """A single-wavelength fault (transponder, pluggable, patch panel)."""
    return Impairment(
        start_s,
        duration_s,
        penalty_db,
        ImpairmentScope.WAVELENGTH,
        root_cause,
    )
