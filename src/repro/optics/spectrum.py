"""The DWDM channel grid: where wavelengths live on a fiber.

The paper's unit of study is "an optical wavelength (i.e., IP link)" —
one channel of the ITU-T C-band grid.  This module models that grid:

* :class:`Channel` — one slot: index, centre frequency, wavelength;
* :class:`ChannelPlan` — a fixed-grid plan (default: 50 GHz spacing,
  96 channels across the C band, the plant the paper's backbone runs);
* :class:`SpectrumAssignment` — first-fit allocation of channels to IP
  links on one fiber, enforcing the capacity a single cable physically
  has (Figure 1's "40 optical wavelengths on a wide area fiber cable"
  is 40 slots of such a plan).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

#: speed of light, m/s
_C = 299_792_458.0
#: low edge of the amplified C band on the ITU grid, THz
C_BAND_START_THZ = 191.35


@dataclass(frozen=True)
class Channel:
    """One fixed-grid DWDM channel."""

    index: int
    frequency_thz: float

    @property
    def wavelength_nm(self) -> float:
        return _C / (self.frequency_thz * 1e12) * 1e9

    def __repr__(self) -> str:
        return f"Channel({self.index}, {self.frequency_thz:.2f} THz)"


class ChannelPlan:
    """A fixed-grid channel plan climbing from the C-band edge.

    Channels are numbered 0..n-1 from the low-frequency edge.  The
    default — 96 channels at 50 GHz from 191.35 THz — spans the
    amplified C band up to 196.10 THz (ITU-T G.694.1 grid points).
    """

    def __init__(
        self,
        *,
        n_channels: int = 96,
        spacing_ghz: float = 50.0,
        start_thz: float = C_BAND_START_THZ,
    ):
        if n_channels <= 0:
            raise ValueError("need at least one channel")
        if spacing_ghz <= 0:
            raise ValueError("spacing must be positive")
        if start_thz <= 0:
            raise ValueError("start frequency must be positive")
        self.n_channels = n_channels
        self.spacing_ghz = spacing_ghz
        self.start_thz = start_thz
        self._channels = tuple(
            Channel(index=i, frequency_thz=start_thz + i * spacing_ghz / 1e3)
            for i in range(n_channels)
        )

    def __len__(self) -> int:
        return self.n_channels

    def __iter__(self) -> Iterator[Channel]:
        return iter(self._channels)

    def channel(self, index: int) -> Channel:
        if not 0 <= index < self.n_channels:
            raise IndexError(
                f"channel {index} outside 0..{self.n_channels - 1}"
            )
        return self._channels[index]

    @property
    def bandwidth_ghz(self) -> float:
        return self.n_channels * self.spacing_ghz

    def __repr__(self) -> str:
        return (
            f"ChannelPlan({self.n_channels} ch @ {self.spacing_ghz:g} GHz)"
        )


@dataclass
class SpectrumAssignment:
    """Channel occupancy of one fiber under a :class:`ChannelPlan`."""

    plan: ChannelPlan = field(default_factory=ChannelPlan)

    def __post_init__(self) -> None:
        self._by_channel: dict[int, str] = {}
        self._by_owner: dict[str, int] = {}

    # -- allocation -------------------------------------------------------

    def assign_first_fit(self, owner: str) -> Channel:
        """Give ``owner`` (an IP link id) the lowest free channel.

        Raises :class:`ValueError` when the fiber is full or the owner
        already holds a channel — both indicate a planning bug upstream.
        """
        if owner in self._by_owner:
            raise ValueError(f"{owner!r} already holds a channel")
        for channel in self.plan:
            if channel.index not in self._by_channel:
                self._by_channel[channel.index] = owner
                self._by_owner[owner] = channel.index
                return channel
        raise ValueError(
            f"fiber full: all {self.plan.n_channels} channels assigned"
        )

    def release(self, owner: str) -> Channel:
        """Free the owner's channel (e.g. the IP link was decommissioned)."""
        try:
            index = self._by_owner.pop(owner)
        except KeyError:
            raise KeyError(f"{owner!r} holds no channel") from None
        del self._by_channel[index]
        return self.plan.channel(index)

    # -- queries --------------------------------------------------------

    def channel_of(self, owner: str) -> Channel:
        try:
            return self.plan.channel(self._by_owner[owner])
        except KeyError:
            raise KeyError(f"{owner!r} holds no channel") from None

    def owner_of(self, index: int) -> str | None:
        return self._by_channel.get(index)

    @property
    def n_assigned(self) -> int:
        return len(self._by_channel)

    @property
    def n_free(self) -> int:
        return self.plan.n_channels - self.n_assigned

    @property
    def utilization(self) -> float:
        return self.n_assigned / self.plan.n_channels

    def owners(self) -> tuple[str, ...]:
        return tuple(sorted(self._by_owner))
