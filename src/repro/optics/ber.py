"""Analytic symbol-error theory: where the SNR thresholds come from.

The paper's capacity ladder rests on thresholds "specific to our
hardware"; this module supplies the standard theory those numbers come
from, so the reproduction's ladder is derivable rather than asserted:

* closed-form symbol-error rates for M-PSK and square M-QAM over AWGN
  (Proakis-style union-bound expressions, exact for BPSK/QPSK),
* the inverse problem — the SNR required to hit a target pre-FEC SER,
* a ladder builder: given the hardware's FEC limit and implementation
  margin, emit a :class:`~repro.optics.modulation.ModulationTable`.

The Monte-Carlo constellation sampler
(:meth:`repro.optics.constellation.Constellation.sample`) is the
independent check: its measured SER must match these formulas, which
the test suite verifies across formats and SNRs.
"""

from __future__ import annotations

import math

from scipy.special import erfc

from repro.optics.modulation import ModulationFormat, ModulationTable
from repro.optics.units import db_to_linear, linear_to_db


def q_function(x: float) -> float:
    """Gaussian tail probability Q(x) = P(N(0,1) > x)."""
    return 0.5 * erfc(x / math.sqrt(2.0))


def ser_mpsk(snr_db: float, order: int) -> float:
    """Symbol-error rate of M-PSK at the given symbol SNR.

    Exact for BPSK and QPSK (Gray-mapped); the standard tight
    approximation ``2 Q(sqrt(2 snr) sin(pi/M))`` for M >= 8.
    """
    if order < 2:
        raise ValueError("PSK order must be >= 2")
    snr = db_to_linear(snr_db)
    if order == 2:
        return q_function(math.sqrt(2.0 * snr))
    if order == 4:
        p = q_function(math.sqrt(snr))
        return 1.0 - (1.0 - p) ** 2
    return min(2.0 * q_function(math.sqrt(2.0 * snr) * math.sin(math.pi / order)), 1.0)


def ser_mqam(snr_db: float, order: int) -> float:
    """Symbol-error rate of square M-QAM at the given symbol SNR.

    The exact square-QAM expression ``1 - (1 - P_sqrt)^2`` with
    ``P_sqrt = 2 (1 - 1/sqrt(M)) Q(sqrt(3 snr / (M - 1)))``.
    """
    side = int(round(math.sqrt(order)))
    if side * side != order or order < 4:
        raise ValueError(f"{order} is not a square QAM order >= 4")
    snr = db_to_linear(snr_db)
    p_sqrt = 2.0 * (1.0 - 1.0 / side) * q_function(math.sqrt(3.0 * snr / (order - 1)))
    return 1.0 - (1.0 - min(p_sqrt, 1.0)) ** 2


_FORMAT_SER = {
    "BPSK": lambda snr: ser_mpsk(snr, 2),
    "QPSK": lambda snr: ser_mpsk(snr, 4),
    "8QAM": lambda snr: ser_mpsk(snr, 8),  # ring approximation
    "16QAM": lambda snr: ser_mqam(snr, 16),
    "64QAM": lambda snr: ser_mqam(snr, 64),
}


def ser_for_format(name: str, snr_db: float) -> float:
    """Analytic SER of a named constellation at ``snr_db``."""
    try:
        return _FORMAT_SER[name](snr_db)
    except KeyError:
        raise ValueError(
            f"no analytic SER for {name!r}; known: {sorted(_FORMAT_SER)}"
        ) from None


def required_snr_for_ser(name: str, target_ser: float) -> float:
    """SNR (dB) at which ``name`` reaches ``target_ser``, by bisection.

    The SER curves are strictly decreasing in SNR, so bisection over a
    generous bracket is exact to the returned precision (1e-4 dB).
    """
    if not 0.0 < target_ser < 1.0:
        raise ValueError("target SER must be in (0, 1)")
    lo, hi = -10.0, 40.0
    if ser_for_format(name, lo) < target_ser:
        return lo
    if ser_for_format(name, hi) > target_ser:
        raise ValueError(f"{name} cannot reach SER {target_ser} below {hi} dB")
    while hi - lo > 1e-4:
        mid = 0.5 * (lo + hi)
        if ser_for_format(name, mid) > target_ser:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def derive_modulation_table(
    *,
    target_ber: float = 3e-2,
    implementation_margin_db: float = 1.0,
    symbol_rate_relative_capacity_gbps: float = 50.0,
) -> ModulationTable:
    """Build a capacity ladder from channel theory.

    Args:
        target_ber: pre-FEC *bit*-error rate the hardware's FEC can
            correct through (soft-decision FECs with ~25% overhead sit
            around 3e-2).  With Gray mapping, SER ~= BER x bits/symbol.
        implementation_margin_db: penalty added on top of theory for
            real DSPs (filtering, phase noise, aging allowance).
        symbol_rate_relative_capacity_gbps: capacity delivered per
            bit/symbol at the fixed line symbol rate (50 Gbps per
            bit/symbol reproduces the paper's 100/150/200 ladder).

    The derived thresholds land on the paper's anchors: with the
    defaults, QPSK (100 Gbps) needs ~6.5 dB and BPSK (50 Gbps) ~3.5 dB
    — which is how those printed numbers arise from an SD-FEC limit
    plus ~1 dB of margin.
    """
    if not 0.0 < target_ber < 0.5:
        raise ValueError("target BER must be in (0, 0.5)")
    rungs = []
    for name, bits in (("BPSK", 1.0), ("QPSK", 2.0), ("8QAM", 3.0), ("16QAM", 4.0)):
        target_ser = min(target_ber * bits, 0.5)
        threshold = required_snr_for_ser(name, target_ser) + implementation_margin_db
        rungs.append(
            ModulationFormat(
                capacity_gbps=bits * symbol_rate_relative_capacity_gbps,
                required_snr_db=round(threshold, 2),
                name=name,
                bits_per_symbol=bits,
            )
        )
    return ModulationTable(rungs)


def snr_penalty_for_rate_increase(
    from_bits_per_symbol: float, to_bits_per_symbol: float
) -> float:
    """Rule-of-thumb extra SNR needed per added bit/symbol (~3 dB/bit).

    Useful for sanity-checking custom ladders: the minimum-distance
    argument gives ``10 log10((2^b2 - 1) / (2^b1 - 1))`` for square
    constellations.
    """
    if from_bits_per_symbol <= 0 or to_bits_per_symbol <= 0:
        raise ValueError("bits per symbol must be positive")
    num = 2.0**to_bits_per_symbol - 1.0
    den = 2.0**from_bits_per_symbol - 1.0
    return linear_to_db(num / den)
