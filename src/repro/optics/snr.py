"""SNR bookkeeping: budgets, margins and feasible-capacity lookups.

This is the thin layer the rest of the system talks to when it has an SNR
in hand and wants an operational answer: *what capacity can this carry*,
*how much margin does the current configuration have*, *is this a failure
at the configured rate*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.optics.modulation import DEFAULT_MODULATIONS, ModulationTable


def required_snr_db(
    capacity_gbps: float, table: ModulationTable = DEFAULT_MODULATIONS
) -> float:
    """SNR threshold (dB) for ``capacity_gbps`` on the given ladder."""
    return table.required_snr(capacity_gbps)


def feasible_capacity_gbps(
    snr_db: float, table: ModulationTable = DEFAULT_MODULATIONS
) -> float:
    """Fastest capacity (Gbps) a signal at ``snr_db`` can carry; 0 if down."""
    return table.feasible_capacity(snr_db)


@dataclass(frozen=True)
class SnrBudget:
    """The operating point of one wavelength: SNR vs. configured capacity.

    Wraps the three questions operators ask of a link's signal quality:

    * :attr:`margin_db` — distance between the SNR and the configured
      capacity's threshold (the "provisioned margin" of Section 2.1),
    * :attr:`headroom_gbps` — how much faster the link could run,
    * :attr:`is_failed` — whether today's binary up/down rule would have
      declared the link down.
    """

    snr_db: float
    configured_capacity_gbps: float
    table: ModulationTable = DEFAULT_MODULATIONS

    @property
    def required_snr_db(self) -> float:
        return self.table.required_snr(self.configured_capacity_gbps)

    @property
    def margin_db(self) -> float:
        """SNR above (positive) or below (negative) the configured threshold."""
        return self.snr_db - self.required_snr_db

    @property
    def is_failed(self) -> bool:
        """True when the binary up/down rule declares the link down."""
        return self.margin_db < 0.0

    @property
    def feasible_capacity_gbps(self) -> float:
        return self.table.feasible_capacity(self.snr_db)

    @property
    def headroom_gbps(self) -> float:
        """Capacity the link could gain by re-modulating to its SNR."""
        return self.table.headroom_above(self.configured_capacity_gbps, self.snr_db)

    @property
    def rescuable(self) -> bool:
        """True when a failed link could still run at a lower rung.

        This is the Section 2.2 opportunity: the SNR is below the
        configured threshold (so today the link fails) but above the
        ladder's minimum (so a dynamic link would only *flap* to a lower
        capacity).
        """
        return self.is_failed and self.feasible_capacity_gbps > 0.0
