"""Fiber spans, amplifier chains and the link noise budget.

The measurement study's SNR baselines come from somewhere physical: a
wavelength crosses a cable made of amplified spans, accumulating ASE noise
at every EDFA and nonlinear-interference (NLI) noise in every span.  This
module computes that budget with the standard incoherent-GN-model
bookkeeping, giving each synthetic wavelength an SNR baseline that depends
on cable length, span design and launch power — exactly the "specific to
our hardware, fiber length, fiber type and wavelength" dependence the
paper describes.

The absolute constants are textbook values (alpha = 0.2 dB/km, EDFA noise
figure ~5 dB, 32 GBaud channels on a 50 GHz grid); they land typical
long-haul SNRs in the 8-20 dB window the paper's Figure 1 shows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.optics.units import db_to_linear, dbm_to_watts, linear_to_db

PLANCK_J_S = 6.62607015e-34
#: Optical carrier frequency of the C band centre (~1550 nm), Hz.
CARRIER_HZ = 193.4e12
#: Reference noise bandwidth for OSNR-style accounting: 32 GBaud matched filter.
SYMBOL_RATE_HZ = 32e9


@dataclass(frozen=True)
class FiberSpan:
    """One passive fiber span between amplification sites."""

    length_km: float
    attenuation_db_per_km: float = 0.2
    #: Coefficient eta of the cubic launch-power dependence of NLI noise,
    #: in 1/W^2 per span: P_nli = eta * P_launch^3.  The default places
    #: the ASE/NLI optimum launch power near 0 dBm for an 80 km span of
    #: standard single-mode fiber, as in deployed systems.
    nli_coefficient_per_w2: float = 250.0

    def __post_init__(self) -> None:
        if self.length_km <= 0:
            raise ValueError(f"span length must be positive, got {self.length_km}")
        if self.attenuation_db_per_km <= 0:
            raise ValueError("attenuation must be positive")

    @property
    def loss_db(self) -> float:
        return self.length_km * self.attenuation_db_per_km

    def nli_noise_watts(self, launch_power_watts: float) -> float:
        """Nonlinear-interference noise power added by this span.

        The incoherent GN model gives NLI noise proportional to the cube
        of launch power per span, independent across spans.
        """
        return self.nli_coefficient_per_w2 * launch_power_watts**3


@dataclass(frozen=True)
class Amplifier:
    """An EDFA that exactly compensates the preceding span's loss."""

    gain_db: float
    noise_figure_db: float = 5.0

    def __post_init__(self) -> None:
        if self.gain_db < 0:
            raise ValueError("amplifier gain must be non-negative")
        if self.noise_figure_db < 3.0:
            raise ValueError("noise figure below the 3 dB quantum limit")

    def ase_noise_watts(self, bandwidth_hz: float = SYMBOL_RATE_HZ) -> float:
        """ASE noise power in ``bandwidth_hz`` added by this amplifier.

        P_ase = h * nu * NF * (G - 1) * B   (single polarisation pair).
        """
        gain = db_to_linear(self.gain_db)
        nf = db_to_linear(self.noise_figure_db)
        return PLANCK_J_S * CARRIER_HZ * nf * max(gain - 1.0, 0.0) * bandwidth_hz


@dataclass
class FiberCable:
    """A chain of identical spans with inline amplification.

    This is the unit the paper calls "a wide area fiber cable": up to
    ~96 DWDM wavelengths share it, so impairments at the cable level move
    all of its wavelengths together (the behaviour visible in Figure 1).
    """

    name: str
    span_length_km: float
    n_spans: int
    attenuation_db_per_km: float = 0.2
    noise_figure_db: float = 5.0
    nli_coefficient_per_w2: float = 250.0

    def __post_init__(self) -> None:
        if self.n_spans <= 0:
            raise ValueError("a cable needs at least one span")
        self.spans = [
            FiberSpan(
                self.span_length_km,
                self.attenuation_db_per_km,
                self.nli_coefficient_per_w2,
            )
            for _ in range(self.n_spans)
        ]
        self.amplifiers = [
            Amplifier(span.loss_db, self.noise_figure_db) for span in self.spans
        ]

    @property
    def length_km(self) -> float:
        return self.span_length_km * self.n_spans


@dataclass
class LineSystem:
    """A cable plus per-wavelength launch configuration -> SNR budget."""

    cable: FiberCable
    launch_power_dbm: float = 0.0
    #: Implementation penalty lumping transceiver imperfections, filtering
    #: and aging allowance, dB (subtracted from the ideal SNR).
    implementation_penalty_db: float = 1.0

    def snr_db(self, *, extra_noise_figure_db: float = 0.0) -> float:
        """End-to-end SNR of one wavelength through the cable.

        ``extra_noise_figure_db`` degrades every amplifier's noise figure;
        impairment events use it to model amplifier faults.
        """
        launch_w = dbm_to_watts(self.launch_power_dbm)
        ase_w = 0.0
        nli_w = 0.0
        for span, amp in zip(self.cable.spans, self.cable.amplifiers):
            degraded = Amplifier(
                amp.gain_db, amp.noise_figure_db + extra_noise_figure_db
            )
            ase_w += degraded.ase_noise_watts()
            nli_w += span.nli_noise_watts(launch_w)
        snr_linear = launch_w / (ase_w + nli_w)
        return linear_to_db(snr_linear) - self.implementation_penalty_db

    def optimal_launch_power_dbm(self) -> float:
        """Launch power maximising SNR (ASE vs NLI trade-off), by search.

        The GN model has a closed form (NLI = ASE/2 at optimum) but a
        bounded search keeps this robust to future noise terms.
        """
        best_p, best_snr = self.launch_power_dbm, -math.inf
        p = -6.0
        while p <= 6.0:
            snr = LineSystem(
                self.cable, p, self.implementation_penalty_db
            ).snr_db()
            if snr > best_snr:
                best_p, best_snr = p, snr
            p += 0.25
        return best_p
