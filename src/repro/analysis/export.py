"""CSV export of the figure data.

Anyone re-plotting the paper's figures (in a notebook, gnuplot, a
LaTeX pipeline) wants the raw series, not our renderings.  This module
writes one tidy CSV per figure into a directory; the CLI exposes it as
``repro export``.

Formats are deliberately boring: a header row, comma separation, one
record per row — no index columns, no metadata blocks.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence


from repro.analysis import figures
from repro.analysis.cdf import empirical_cdf
from repro.telemetry.stats import LinkSummary


def _write_csv(path: Path, header: Sequence[str], rows) -> Path:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def export_fig1(outdir: Path, *, years: float, seed: int) -> Path:
    """fig1.csv: one row per sample, one column per wavelength."""
    data = figures.fig1_snr_timeseries(years=years, seed=seed)
    header = ["time_days"] + [str(link_id) for link_id in data.link_ids]
    rows = (
        [float(t)] + [float(x) for x in data.snr_db[:, i]]
        for i, t in enumerate(data.times_days)
    )
    return _write_csv(outdir / "fig1_snr_timeseries.csv", header, rows)


def export_fig2a(outdir: Path, summaries: Sequence[LinkSummary]) -> Path:
    """fig2a.csv: the two CDFs, long format."""
    data = figures.fig2a_snr_variation(summaries)
    rows = []
    for metric, values in (
        ("hdr_width_db", data.hdr_widths_db),
        ("range_db", data.ranges_db),
    ):
        x, p = empirical_cdf(values)
        rows.extend((metric, float(v), float(q)) for v, q in zip(x, p))
    return _write_csv(
        outdir / "fig2a_snr_variation.csv", ["metric", "value_db", "cdf"], rows
    )


def export_fig2b(outdir: Path, summaries: Sequence[LinkSummary]) -> Path:
    data = figures.fig2b_feasible_capacity(summaries)
    x, p = empirical_cdf(data.feasible_gbps)
    rows = ((float(v), float(q)) for v, q in zip(x, p))
    return _write_csv(
        outdir / "fig2b_feasible_capacity.csv", ["capacity_gbps", "cdf"], rows
    )


def export_fig3a(outdir: Path, *, years: float, seed: int) -> Path:
    data = figures.fig3a_failures_vs_capacity(years=years, seed=seed)
    rows = []
    for capacity in data.capacities_gbps:
        for link_index, count in enumerate(data.failures[capacity]):
            rows.append((float(capacity), link_index, int(count)))
    return _write_csv(
        outdir / "fig3a_failures_vs_capacity.csv",
        ["capacity_gbps", "link_index", "n_failures"],
        rows,
    )


def export_fig3b(outdir: Path, summaries: Sequence[LinkSummary]) -> Path:
    data = figures.fig3b_failure_durations(summaries)
    rows = []
    for capacity in data.capacities_gbps:
        for duration in data.durations_h[capacity]:
            rows.append((float(capacity), float(duration)))
    return _write_csv(
        outdir / "fig3b_failure_durations.csv",
        ["capacity_gbps", "duration_h"],
        rows,
    )


def export_fig4(outdir: Path, summaries: Sequence[LinkSummary], *, seed: int) -> Path:
    shares = figures.fig4ab_root_causes(seed=seed)
    rows = [
        (cause.label, float(shares.frequency[cause]), float(shares.duration[cause]))
        for cause in shares.frequency
    ]
    _write_csv(
        outdir / "fig4ab_root_causes.csv",
        ["root_cause", "frequency_share", "duration_share"],
        rows,
    )
    data = figures.fig4c_failure_snr(summaries)
    x, p = empirical_cdf(data.min_snrs_db)
    return _write_csv(
        outdir / "fig4c_failure_snr.csv",
        ["min_snr_db", "cdf"],
        ((float(v), float(q)) for v, q in zip(x, p)),
    )


def export_fig6b(outdir: Path, *, seed: int) -> Path:
    report = figures.fig6b_modulation_change(seed=seed)
    rows = [("standard", float(s)) for s in report.standard_downtimes_s]
    rows += [("efficient", float(s)) for s in report.efficient_downtimes_s]
    return _write_csv(
        outdir / "fig6b_modulation_change.csv",
        ["procedure", "downtime_s"],
        rows,
    )


def export_all(
    outdir: str | Path,
    summaries: Sequence[LinkSummary],
    *,
    years: float = 2.5,
    seed: int = 2017,
) -> list[Path]:
    """Write every figure's CSV into ``outdir`` (created if missing)."""
    if not summaries:
        raise ValueError("no link summaries")
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    return [
        export_fig1(outdir, years=years, seed=seed),
        export_fig2a(outdir, summaries),
        export_fig2b(outdir, summaries),
        export_fig3a(outdir, years=years, seed=seed),
        export_fig3b(outdir, summaries),
        export_fig4(outdir, summaries, seed=seed),
        export_fig6b(outdir, seed=seed),
    ]
