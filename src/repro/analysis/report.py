"""Plain-text rendering of figure series.

The benchmark harness prints the same rows/series the paper plots;
these helpers keep the output uniform and diff-able (EXPERIMENTS.md
embeds them verbatim).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.analysis.cdf import cdf_at, quantile


def render_cdf(
    name: str,
    values,
    *,
    points: Sequence[float] | None = None,
    unit: str = "",
) -> str:
    """A compact CDF table: P(X <= x) at chosen x values."""
    data = np.asarray(values, dtype=float)
    if points is None:
        points = [quantile(data, q) for q in (0.1, 0.25, 0.5, 0.75, 0.9)]
    lines = [f"CDF of {name} (n={data.size})"]
    for x in points:
        lines.append(f"  P(x <= {x:8.2f}{unit}) = {cdf_at(data, x):6.3f}")
    return "\n".join(lines)


def render_distribution(name: str, values, *, unit: str = "") -> str:
    """Five-number summary plus mean."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        return f"{name}: (empty)"
    return (
        f"{name}: n={data.size} "
        f"min={data.min():.2f}{unit} "
        f"p25={quantile(data, 0.25):.2f}{unit} "
        f"median={np.median(data):.2f}{unit} "
        f"p75={quantile(data, 0.75):.2f}{unit} "
        f"max={data.max():.2f}{unit} "
        f"mean={data.mean():.2f}{unit}"
    )


def render_shares(name: str, shares: Mapping, *, as_percent: bool = True) -> str:
    """Category-share bars (Figures 4a/4b style)."""
    lines = [name]
    for key, value in shares.items():
        label = getattr(key, "label", str(key))
        pct = 100.0 * value if as_percent else value
        bar = "#" * int(round(pct / 2))
        lines.append(f"  {label:<20} {pct:5.1f}%  {bar}")
    return "\n".join(lines)


def render_series(
    name: str,
    rows: Iterable[tuple],
    *,
    header: Sequence[str],
) -> str:
    """A fixed-width table for sweep results."""
    lines = [name, "  " + "  ".join(f"{h:>12}" for h in header)]
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(f"{cell:>12.2f}")
            else:
                cells.append(f"{str(cell):>12}")
        lines.append("  " + "  ".join(cells))
    return "\n".join(lines)
