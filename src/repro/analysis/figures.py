"""One entry point per figure of the paper's evaluation.

Every function is deterministic given its ``seed``/config arguments and
returns a small dataclass of the series the corresponding figure plots.
The benchmark harness (``benchmarks/``) calls these and prints the rows
next to the paper's reported values; EXPERIMENTS.md records the
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.cdf import cdf_at, empirical_cdf
from repro.bvt.testbed import Testbed, TestbedReport
from repro.net.demands import Demand
from repro.net.topologies import figure7_topology
from repro.optics.constellation import ConstellationSample
from repro.optics.modulation import DEFAULT_MODULATIONS, ModulationTable
from repro.telemetry.dataset import (
    BackboneConfig,
    BackboneDataset,
    CableSpec,
    high_quality_cable_spec,
)
from repro.telemetry.stats import LinkSummary, summarize_trace
from repro.telemetry.traces import NoiseModel
from repro.tickets.analysis import CauseShares, shares_by_cause
from repro.tickets.generator import TicketGenerator


def default_dataset(*, years: float = 2.5, n_cables: int = 55, seed: int = 2017) -> BackboneDataset:
    """The backbone the measurement figures run on (~2,000 links)."""
    return BackboneDataset(BackboneConfig(n_cables=n_cables, years=years, seed=seed))


# ---------------------------------------------------------------- Figure 1


@dataclass(frozen=True)
class Fig1Data:
    """SNR over time for the wavelengths of one long-haul cable."""

    times_days: np.ndarray
    snr_db: np.ndarray  # (n_wavelengths, n_samples)
    link_ids: tuple[str, ...]
    thresholds_db: Mapping[float, float]  # capacity -> required SNR


def fig1_snr_timeseries(
    *,
    years: float = 2.5,
    n_wavelengths: int = 40,
    seed: int = 2017,
    table: ModulationTable = DEFAULT_MODULATIONS,
) -> Fig1Data:
    """Figure 1: 40 wavelengths of one WAN cable over the study period.

    The paper's cable sits between ~10.5 and ~14 dB — a long-haul span
    whose wavelengths all clear the 6.5 dB / 100 Gbps threshold with
    several dB to spare.
    """
    rng = np.random.default_rng(seed)
    # a ~4,800 km system: baseline ~12.5 dB, wavelength ripple spreading
    # the cable across the paper's ~10.5-14 dB band
    ripple = np.sort(rng.uniform(-2.0, 1.5, size=n_wavelengths))
    spec = CableSpec(
        name="fig1-cable",
        n_wavelengths=n_wavelengths,
        n_spans=60,
        ripple_db=tuple(float(r) for r in ripple),
        noise=NoiseModel(sigma_db=0.18, rho=0.9, wander_amplitude_db=0.35),
    )
    dataset = BackboneDataset(BackboneConfig(years=years, seed=seed))
    traces = dataset.cable_traces(spec)
    snr = np.stack([t.snr_db for t in traces])
    times_days = traces[0].timebase.times_s() / 86_400.0
    return Fig1Data(
        times_days=times_days,
        snr_db=snr,
        link_ids=tuple(t.link_id for t in traces),
        thresholds_db={
            f.capacity_gbps: f.required_snr_db for f in table
        },
    )


# --------------------------------------------------------------- Figure 2a


@dataclass(frozen=True)
class Fig2aData:
    """CDFs of SNR variation: HDR(95%) width vs. max-min range."""

    hdr_widths_db: np.ndarray
    ranges_db: np.ndarray

    @property
    def frac_hdr_below_2db(self) -> float:
        return cdf_at(self.hdr_widths_db, 2.0)

    @property
    def mean_range_db(self) -> float:
        return float(np.mean(self.ranges_db))

    def cdfs(self):
        return empirical_cdf(self.hdr_widths_db), empirical_cdf(self.ranges_db)


def fig2a_snr_variation(summaries: Sequence[LinkSummary]) -> Fig2aData:
    """Figure 2a from per-link summaries (see :func:`default_dataset`)."""
    if not summaries:
        raise ValueError("no link summaries")
    return Fig2aData(
        hdr_widths_db=np.array([s.hdr_width_db for s in summaries]),
        ranges_db=np.array([s.range_db for s in summaries]),
    )


# --------------------------------------------------------------- Figure 2b


@dataclass(frozen=True)
class Fig2bData:
    """Feasible-capacity CDF and the aggregate capacity gain."""

    feasible_gbps: np.ndarray
    gains_gbps: np.ndarray

    @property
    def frac_at_least_175(self) -> float:
        return float(np.mean(self.feasible_gbps >= 175.0))

    @property
    def total_gain_tbps(self) -> float:
        return float(np.sum(self.gains_gbps)) / 1000.0

    def capacity_cdf(self):
        return empirical_cdf(self.feasible_gbps)


def fig2b_feasible_capacity(summaries: Sequence[LinkSummary]) -> Fig2bData:
    """Figure 2b: capacity each link could run at (HDR-lower-bound rule)."""
    if not summaries:
        raise ValueError("no link summaries")
    return Fig2bData(
        feasible_gbps=np.array([s.feasible_capacity_gbps for s in summaries]),
        gains_gbps=np.array([s.capacity_gain_gbps for s in summaries]),
    )


# --------------------------------------------------------------- Figure 3a


@dataclass(frozen=True)
class Fig3aData:
    """Failure counts per configured capacity, per link of one cable."""

    capacities_gbps: tuple[float, ...]
    #: failures[c][i] = number of failures link i would see at capacity c
    failures: Mapping[float, np.ndarray]

    def mean_failures(self, capacity: float) -> float:
        return float(np.mean(self.failures[capacity]))

    def max_failures(self, capacity: float) -> int:
        return int(np.max(self.failures[capacity]))


def fig3a_failures_vs_capacity(
    *,
    years: float = 2.5,
    seed: int = 2017,
    table: ModulationTable = DEFAULT_MODULATIONS,
) -> Fig3aData:
    """Figure 3a: the high-quality cable where 200 Gbps bites back."""
    dataset = BackboneDataset(BackboneConfig(years=years, seed=seed))
    spec = high_quality_cable_spec()
    capacities = tuple(c for c in table.capacities_gbps if c >= 100.0)
    counts: dict[float, list[int]] = {c: [] for c in capacities}
    for trace in dataset.cable_traces(spec):
        summary = summarize_trace(trace, table=table)
        for c in capacities:
            counts[c].append(summary.failures_at(c).n_episodes)
    return Fig3aData(
        capacities_gbps=capacities,
        failures={c: np.array(v) for c, v in counts.items()},
    )


# --------------------------------------------------------------- Figure 3b


@dataclass(frozen=True)
class Fig3bData:
    """Failure-duration distributions per configured capacity."""

    capacities_gbps: tuple[float, ...]
    durations_h: Mapping[float, np.ndarray]

    def mean_duration_h(self, capacity: float) -> float:
        d = self.durations_h[capacity]
        return float(np.mean(d)) if d.size else 0.0

    def median_duration_h(self, capacity: float) -> float:
        d = self.durations_h[capacity]
        return float(np.median(d)) if d.size else 0.0


def fig3b_failure_durations(
    summaries: Sequence[LinkSummary],
    *,
    table: ModulationTable = DEFAULT_MODULATIONS,
) -> Fig3bData:
    """Figure 3b: duration of failures if links ran at each capacity.

    Per the paper, a capacity contributes a link's episodes "only if the
    capacity is feasible as per the link's SNR".
    """
    if not summaries:
        raise ValueError("no link summaries")
    capacities = tuple(c for c in table.capacities_gbps if c >= 100.0)
    pools: dict[float, list[float]] = {c: [] for c in capacities}
    for s in summaries:
        for c in capacities:
            if s.feasible_capacity_gbps >= c:
                pools[c].extend(s.failures_at(c).durations_h)
    return Fig3bData(
        capacities_gbps=capacities,
        durations_h={c: np.array(v) for c, v in pools.items()},
    )


# -------------------------------------------------------------- Figure 4a/b


def fig4ab_root_causes(*, seed: int = 2017) -> CauseShares:
    """Figures 4a/4b: root-cause shares of the 250-ticket corpus."""
    corpus = TicketGenerator().generate(np.random.default_rng(seed))
    return shares_by_cause(corpus)


# --------------------------------------------------------------- Figure 4c


@dataclass(frozen=True)
class Fig4cData:
    """Lowest SNR during each 100 Gbps failure event."""

    min_snrs_db: np.ndarray

    @property
    def frac_at_least_3db(self) -> float:
        """The paper's rescuable fraction (~25%)."""
        return float(np.mean(self.min_snrs_db >= 3.0))

    def cdf(self):
        return empirical_cdf(self.min_snrs_db)


def fig4c_failure_snr(summaries: Sequence[LinkSummary]) -> Fig4cData:
    """Figure 4c from the telemetry dataset's 100 Gbps failure episodes."""
    mins: list[float] = []
    for s in summaries:
        mins.extend(s.failures_at(100.0).min_snrs_db)
    if not mins:
        raise ValueError("dataset contains no 100 Gbps failures")
    return Fig4cData(min_snrs_db=np.array(mins))


# ---------------------------------------------------------------- Figure 5


def fig5_constellations(
    *, n_symbols: int = 2000, seed: int = 5
) -> dict[float, ConstellationSample]:
    """Figure 5: received constellations at 100/150/200 Gbps."""
    testbed = Testbed(seed=seed)
    return {
        capacity: testbed.capture_constellation(capacity, n_symbols)
        for capacity in Testbed.FIGURE5_CAPACITIES_GBPS
    }


# --------------------------------------------------------------- Figure 6b


def fig6b_modulation_change(
    *, n_changes: int = 200, seed: int = 68
) -> TestbedReport:
    """Figure 6b: 200 modulation changes, standard vs. efficient."""
    return Testbed(seed=seed).run_figure6_experiment(n_changes)


# ---------------------------------------------------------------- Figure 7


@dataclass(frozen=True)
class Fig7Data:
    """The worked example: throughput and upgrade count."""

    allocated_gbps: float
    n_upgrades: int
    upgraded_links: tuple[str, ...]
    penalty_paid: float


def fig7_example(*, upgrade_penalty: float = 100.0) -> Fig7Data:
    """Section 4.1 / Figure 7: both demands served with one upgrade."""
    from repro.core.augmentation import augment_topology
    from repro.core.penalties import ConstantPenalty
    from repro.core.translation import translate
    from repro.te.lp import MultiCommodityLp

    topo = figure7_topology()
    for src, dst in (("A", "B"), ("B", "A"), ("C", "D"), ("D", "C")):
        link_id = topo.links_between(src, dst)[0].link_id
        topo.replace_link(link_id, headroom_gbps=100.0)
    aug = augment_topology(topo, penalty_policy=ConstantPenalty(upgrade_penalty))
    demands = [Demand("A", "B", 125.0), Demand("C", "D", 125.0)]
    outcome = MultiCommodityLp(aug.topology, demands).min_penalty_at_max_throughput()
    result = translate(aug, outcome.solution, table=DEFAULT_MODULATIONS)
    return Fig7Data(
        allocated_gbps=outcome.solution.total_allocated_gbps,
        n_upgrades=len(result.upgrades),
        upgraded_links=tuple(u.link_id for u in result.upgrades),
        penalty_paid=outcome.solution.penalty_cost,
    )
