"""One-shot reproduction report: every figure, one text document.

:func:`build_report` runs the full figure set at a chosen scale and
renders a single plain-text report with the paper's reference values
inline — the artifact a reviewer would want attached to a reproduction
claim.  The CLI exposes it as ``repro report``.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

import numpy as np

from repro.analysis import figures
from repro.analysis.cdf import cdf_at
from repro.analysis.report import render_series, render_shares
from repro.telemetry.dataset import BackboneConfig, BackboneDataset


@dataclass(frozen=True)
class ReportScale:
    """How much synthetic data the report runs on."""

    n_cables: int
    years: float
    seed: int = 2017

    @classmethod
    def paper(cls) -> "ReportScale":
        return cls(n_cables=55, years=2.5)

    @classmethod
    def quick(cls) -> "ReportScale":
        return cls(n_cables=12, years=1.0)


def build_report(scale: ReportScale | None = None) -> str:
    """The full reproduction report as one string."""
    scale = scale if scale is not None else ReportScale.quick()
    out = io.StringIO()
    write = lambda line="": print(line, file=out)  # noqa: E731 - local helper

    dataset = BackboneDataset(
        BackboneConfig(n_cables=scale.n_cables, years=scale.years, seed=scale.seed)
    )
    write("=" * 72)
    write("Run, Walk, Crawl — reproduction report")
    write(
        f"scale: {dataset.n_links()} links x {scale.years} years "
        f"(seed {scale.seed})"
    )
    write("=" * 72)

    summaries = dataset.summaries()

    fig2a = figures.fig2a_snr_variation(summaries)
    write()
    write("Figure 2a — SNR variation")
    write(
        f"  HDR(95%) < 2 dB: {100.0 * fig2a.frac_hdr_below_2db:5.1f}%   "
        f"(paper: 83%)"
    )
    write(f"  mean max-min range: {fig2a.mean_range_db:5.1f} dB (paper: ~12 dB)")

    fig2b = figures.fig2b_feasible_capacity(summaries)
    write()
    write("Figure 2b — feasible capacity")
    for capacity in (125.0, 150.0, 175.0, 200.0):
        frac = float(np.mean(fig2b.feasible_gbps >= capacity))
        write(f"  >= {capacity:3.0f} Gbps: {100.0 * frac:5.1f}% of links")
    write(
        f"  aggregate headroom: {fig2b.total_gain_tbps:.1f} Tbps "
        f"(paper: 145 Tbps over >2,000 links)"
    )

    fig3a = figures.fig3a_failures_vs_capacity(years=scale.years, seed=scale.seed)
    write()
    write("Figure 3a — failures vs capacity on a premium cable")
    rows = [
        (f"{c:.0f}G", fig3a.mean_failures(c), fig3a.max_failures(c))
        for c in fig3a.capacities_gbps
    ]
    write(render_series("  per capacity", rows, header=["cap", "mean", "max"]))

    fig3b = figures.fig3b_failure_durations(summaries)
    write()
    write("Figure 3b — failure durations (hours)")
    rows = [
        (f"{c:.0f}G", fig3b.durations_h[c].size, fig3b.mean_duration_h(c))
        for c in fig3b.capacities_gbps
    ]
    write(render_series("  per capacity", rows, header=["cap", "n", "mean h"]))

    shares = figures.fig4ab_root_causes(seed=scale.seed)
    write()
    write("Figures 4a/4b — root causes")
    write(render_shares("  duration shares", dict(shares.duration)))
    write(render_shares("  frequency shares", dict(shares.frequency)))

    fig4c = figures.fig4c_failure_snr(summaries)
    write()
    write("Figure 4c — lowest SNR at failure")
    write(
        f"  rescuable at 50 Gbps (>= 3 dB): "
        f"{100.0 * fig4c.frac_at_least_3db:5.1f}% (paper: ~25%)"
    )
    write(f"  loss-of-light share: {100.0 * cdf_at(fig4c.min_snrs_db, 0.0):5.1f}%")

    report6b = figures.fig6b_modulation_change()
    write()
    write("Figure 6b — modulation-change latency")
    write(f"  standard:  {report6b.standard_mean_s:6.1f} s   (paper: 68 s)")
    write(
        f"  efficient: {1000.0 * report6b.efficient_mean_s:6.1f} ms  "
        f"(paper: 35 ms)"
    )

    fig7 = figures.fig7_example()
    write()
    write("Figure 7 — the graph abstraction example")
    write(
        f"  {fig7.allocated_gbps:.0f} Gbps allocated with "
        f"{fig7.n_upgrades} upgrade(s) (paper: one upgrade suffices)"
    )

    write()
    write("=" * 72)
    return out.getvalue()
