"""Margin accounting: what static over-provisioning costs.

Section 2.1's deeper argument, made quantitative: operators provision
SNR margin against the *worst* dip they fear, so the margin sits unused
almost all the time ("stranded" capacity).  Pushing static thresholds
tighter recovers capacity but manufactures failures (Figure 3a).  The
frontier between those two is exactly the curve dynamic capacity
escapes — it tracks the SNR instead of committing to a point on the
trade-off.

Inputs are the per-link summaries of the telemetry study; outputs:

* per-link provisioned margin and stranded capacity
  (:func:`margin_report`),
* the static capacity-vs-failures frontier
  (:func:`static_provisioning_frontier`), with the dynamic operating
  point for contrast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.optics.modulation import DEFAULT_MODULATIONS, ModulationTable
from repro.telemetry.stats import LinkSummary


@dataclass(frozen=True)
class MarginReport:
    """Provisioned-margin statistics across the backbone."""

    margins_db: np.ndarray  # HDR-low minus the configured threshold
    stranded_gbps: np.ndarray  # headroom the static config wastes

    @property
    def mean_margin_db(self) -> float:
        return float(np.mean(self.margins_db))

    @property
    def total_stranded_tbps(self) -> float:
        return float(np.sum(self.stranded_gbps)) / 1000.0

    @property
    def frac_links_over_margined(self) -> float:
        """Links carrying more than 6 dB of unused margin."""
        return float(np.mean(self.margins_db > 6.0))


def margin_report(
    summaries: Sequence[LinkSummary],
    *,
    table: ModulationTable = DEFAULT_MODULATIONS,
) -> MarginReport:
    """Margins and stranded capacity under the static configuration."""
    if not summaries:
        raise ValueError("no link summaries")
    margins = []
    stranded = []
    for s in summaries:
        threshold = table.required_snr(s.configured_capacity_gbps)
        margins.append(s.hdr.low - threshold)
        stranded.append(s.capacity_gain_gbps)
    return MarginReport(
        margins_db=np.array(margins), stranded_gbps=np.array(stranded)
    )


@dataclass(frozen=True)
class FrontierPoint:
    """One static operating point: capacity recovered vs. failures paid."""

    label: str
    total_capacity_gbps: float
    failures_per_link_year: float
    #: capacity relative to the all-100G baseline
    capacity_gain_ratio: float


def static_provisioning_frontier(
    summaries: Sequence[LinkSummary],
    *,
    years: float,
    table: ModulationTable = DEFAULT_MODULATIONS,
) -> list[FrontierPoint]:
    """The static capacity/failure trade-off, plus the dynamic point.

    For each rung of the ladder, configure every link at the *fastest
    rung not exceeding* its feasible capacity capped at that rung
    (operators would never exceed feasibility on purpose), and charge
    the link the failures it would see at its assigned rate.  The last
    point is the dynamic network: feasible capacity everywhere, but
    only the failures of the *lowest* rung (everything above a 50 Gbps
    dip becomes a flap).

    ``years`` is the telemetry horizon, used to annualise failures.
    """
    if not summaries:
        raise ValueError("no link summaries")
    if years <= 0:
        raise ValueError("years must be positive")
    baseline_capacity = sum(s.configured_capacity_gbps for s in summaries)
    points = []
    for cap_rung in table.capacities_gbps:
        if cap_rung < summaries[0].configured_capacity_gbps:
            continue
        total = 0.0
        failures = 0
        for s in summaries:
            assigned = min(
                max(s.feasible_capacity_gbps, s.configured_capacity_gbps),
                cap_rung,
            )
            total += assigned
            failures += s.failures_at(assigned).n_episodes
        points.append(
            FrontierPoint(
                label=f"static@{cap_rung:g}G",
                total_capacity_gbps=total,
                failures_per_link_year=failures / (len(summaries) * years),
                capacity_gain_ratio=total / baseline_capacity,
            )
        )

    floor_capacity = table.min_capacity_gbps
    dynamic_total = sum(
        max(s.feasible_capacity_gbps, s.configured_capacity_gbps)
        for s in summaries
    )
    dynamic_failures = sum(
        s.failures_at(floor_capacity).n_episodes for s in summaries
    )
    points.append(
        FrontierPoint(
            label="dynamic",
            total_capacity_gbps=dynamic_total,
            failures_per_link_year=dynamic_failures / (len(summaries) * years),
            capacity_gain_ratio=dynamic_total / baseline_capacity,
        )
    )
    return points
