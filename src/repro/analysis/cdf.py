"""Empirical CDF helpers shared by the figure generators."""

from __future__ import annotations

import numpy as np


def empirical_cdf(values) -> tuple[np.ndarray, np.ndarray]:
    """Sorted sample plus cumulative probabilities.

    Returns ``(x, p)`` with ``p[i]`` the fraction of the sample that is
    <= ``x[i]`` (the right-continuous step CDF evaluated at the points).

    >>> x, p = empirical_cdf([3.0, 1.0, 2.0, 2.0])
    >>> x.tolist(), p.tolist()
    ([1.0, 2.0, 2.0, 3.0], [0.25, 0.5, 0.75, 1.0])
    """
    data = np.sort(np.asarray(values, dtype=float).ravel())
    if data.size == 0:
        raise ValueError("empty sample")
    p = np.arange(1, data.size + 1) / data.size
    return data, p


def cdf_at(values, x: float) -> float:
    """Fraction of the sample <= ``x``."""
    data = np.asarray(values, dtype=float).ravel()
    if data.size == 0:
        raise ValueError("empty sample")
    return float(np.mean(data <= x))


def quantile(values, q: float) -> float:
    """The ``q``-quantile of the sample (0 <= q <= 1)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    data = np.asarray(values, dtype=float).ravel()
    if data.size == 0:
        raise ValueError("empty sample")
    return float(np.quantile(data, q))
