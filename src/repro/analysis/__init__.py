"""Figure/table data generation and rendering.

:mod:`~repro.analysis.figures` has one entry point per figure of the
paper's evaluation; each returns a plain dataclass of series that the
benchmarks print via :mod:`~repro.analysis.report`.  The CDF helpers in
:mod:`~repro.analysis.cdf` are shared by both.
"""

from repro.analysis.cdf import cdf_at, empirical_cdf, quantile
from repro.analysis import figures
from repro.analysis.margins import (
    FrontierPoint,
    MarginReport,
    margin_report,
    static_provisioning_frontier,
)
from repro.analysis.report import (
    render_cdf,
    render_distribution,
    render_series,
    render_shares,
)

__all__ = [
    "cdf_at",
    "empirical_cdf",
    "quantile",
    "figures",
    "render_cdf",
    "render_distribution",
    "render_series",
    "render_shares",
    "FrontierPoint",
    "MarginReport",
    "margin_report",
    "static_provisioning_frontier",
]
