"""Shared process-pool machinery for corpus synthesis and sweep runs.

Extracted from :mod:`repro.telemetry.dataset` (PR 1) so every layer
that fans independent jobs out over workers — cable synthesis, the
:mod:`repro.experiments` sweep runner, future sharded backends — goes
through one probe/fallback path:

* :func:`resolve_workers` — normalise a ``workers`` knob against the
  ``REPRO_WORKERS`` environment variable (``None`` defers, minimum 1);
* :func:`process_pool_usable` — probe once whether this host can fork a
  :class:`~concurrent.futures.ProcessPoolExecutor` (sandboxes and
  exotic interpreters sometimes cannot);
* :func:`make_pool` — a process pool when possible, else a thread pool
  (jobs that carry their own rng stay deterministic either way);
* :func:`pool_map` — ordered map over a pool with bounded in-flight
  work, so streaming consumers keep their bounded-memory guarantees.

:func:`pool_map` also survives a *dying* pool: a worker SIGKILLed
mid-job (OOM killer, a crash-fault experiment gone feral) breaks the
whole :class:`~concurrent.futures.ProcessPoolExecutor`, which poisons
every outstanding future.  Instead of surfacing that as a sweep-wide
failure, the map falls back once to a thread pool and re-runs the
unfinished items in order — results stay ordered and deterministic,
and the event is counted (``parallel.broken_pool``).
"""

from __future__ import annotations

import itertools
import os
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Iterator, TypeVar

from repro.obs import metrics as _metrics

_T = TypeVar("_T")
_S = TypeVar("_S")

#: Default worker count when ``workers=None`` (0/unset means serial).
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None) -> int:
    """Normalise the ``workers`` knob: ``None`` defers to ``REPRO_WORKERS``."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "")
        try:
            workers = int(raw) if raw else 1
        except ValueError:
            workers = 1
    return max(int(workers), 1)


_process_pool_ok: bool | None = None


def process_pool_usable() -> bool:
    """Probe once whether this host can run a ProcessPoolExecutor.

    Sandboxes and exotic interpreters sometimes forbid forking; the
    fallback is a thread pool, which preserves determinism (jobs carry
    their own rng) and still overlaps the release-the-GIL numpy/scipy
    sections.
    """
    global _process_pool_ok
    if _process_pool_ok is None:
        try:
            with ProcessPoolExecutor(max_workers=1) as pool:
                _process_pool_ok = pool.submit(int, 1).result(timeout=60) == 1
        except Exception:
            _process_pool_ok = False
    return _process_pool_ok


def make_pool(workers: int) -> Executor:
    """A process pool when the host allows it, else a thread pool."""
    if process_pool_usable():
        return ProcessPoolExecutor(max_workers=workers)
    return ThreadPoolExecutor(max_workers=workers)


def pool_map(
    fn: Callable[[_S], _T], items: Iterable[_S], workers: int
) -> Iterator[_T]:
    """Map ``fn`` over ``items`` on a pool, yielding results in input order.

    In-flight work is bounded (``workers + 2`` outstanding futures) so a
    streaming consumer keeps a bounded-memory guarantee even when
    producers run ahead.

    A :class:`BrokenProcessPool` (a worker died — SIGKILL, OOM) does
    not poison the map: the unfinished items are retried once, in
    order, on a thread pool.  Anything ``fn`` itself raises propagates
    unchanged, on either pool.
    """
    _metrics.gauge("parallel.workers").set(workers)
    items = iter(items)
    with make_pool(workers) as pool:
        # (item, future) pairs: if the pool dies we still know which
        # inputs the broken futures belonged to
        pending: deque = deque()
        try:
            for item in items:
                pending.append((item, pool.submit(fn, item)))
                _metrics.counter("parallel.jobs").inc()
                if len(pending) > workers + 2:
                    result = pending[0][1].result()
                    pending.popleft()
                    yield result
            while pending:
                result = pending[0][1].result()
                pending.popleft()
                yield result
            return
        except BrokenProcessPool:
            _metrics.counter("parallel.broken_pool").inc()
    # the broken pool is torn down; retry every unfinished item (the
    # in-flight ones plus whatever the iterator still holds) on threads
    retry = itertools.chain((item for item, _ in pending), items)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        fallback: deque = deque()
        for item in retry:
            fallback.append(pool.submit(fn, item))
            _metrics.counter("parallel.jobs").inc()
            if len(fallback) > workers + 2:
                yield fallback.popleft().result()
        while fallback:
            yield fallback.popleft().result()
