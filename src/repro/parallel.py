"""Shared process-pool machinery for corpus synthesis and sweep runs.

Extracted from :mod:`repro.telemetry.dataset` (PR 1) so every layer
that fans independent jobs out over workers — cable synthesis, the
:mod:`repro.experiments` sweep runner, future sharded backends — goes
through one probe/fallback path:

* :func:`resolve_workers` — normalise a ``workers`` knob against the
  ``REPRO_WORKERS`` environment variable (``None`` defers, minimum 1);
* :func:`process_pool_usable` — probe once whether this host can fork a
  :class:`~concurrent.futures.ProcessPoolExecutor` (sandboxes and
  exotic interpreters sometimes cannot);
* :func:`make_pool` — a process pool when possible, else a thread pool
  (jobs that carry their own rng stay deterministic either way);
* :func:`pool_map` — ordered map over a pool with bounded in-flight
  work, so streaming consumers keep their bounded-memory guarantees.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, TypeVar

from repro.obs import metrics as _metrics

_T = TypeVar("_T")
_S = TypeVar("_S")

#: Default worker count when ``workers=None`` (0/unset means serial).
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None) -> int:
    """Normalise the ``workers`` knob: ``None`` defers to ``REPRO_WORKERS``."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "")
        try:
            workers = int(raw) if raw else 1
        except ValueError:
            workers = 1
    return max(int(workers), 1)


_process_pool_ok: bool | None = None


def process_pool_usable() -> bool:
    """Probe once whether this host can run a ProcessPoolExecutor.

    Sandboxes and exotic interpreters sometimes forbid forking; the
    fallback is a thread pool, which preserves determinism (jobs carry
    their own rng) and still overlaps the release-the-GIL numpy/scipy
    sections.
    """
    global _process_pool_ok
    if _process_pool_ok is None:
        try:
            with ProcessPoolExecutor(max_workers=1) as pool:
                _process_pool_ok = pool.submit(int, 1).result(timeout=60) == 1
        except Exception:
            _process_pool_ok = False
    return _process_pool_ok


def make_pool(workers: int) -> Executor:
    """A process pool when the host allows it, else a thread pool."""
    if process_pool_usable():
        return ProcessPoolExecutor(max_workers=workers)
    return ThreadPoolExecutor(max_workers=workers)


def pool_map(
    fn: Callable[[_S], _T], items: Iterable[_S], workers: int
) -> Iterator[_T]:
    """Map ``fn`` over ``items`` on a pool, yielding results in input order.

    In-flight work is bounded (``workers + 2`` outstanding futures) so a
    streaming consumer keeps a bounded-memory guarantee even when
    producers run ahead.
    """
    _metrics.gauge("parallel.workers").set(workers)
    with make_pool(workers) as pool:
        pending: deque = deque()
        for item in items:
            pending.append(pool.submit(fn, item))
            _metrics.counter("parallel.jobs").inc()
            if len(pending) > workers + 2:
                yield pending.popleft().result()
        while pending:
            yield pending.popleft().result()
