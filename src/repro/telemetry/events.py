"""Impairment event processes for trace synthesis.

Each cable (and each wavelength) experiences rare events drawn from
independent Poisson processes, one per root-cause category.  The rates
and severity distributions below are the reproduction's calibration
knobs; the defaults are tuned so the synthetic backbone reproduces the
paper's aggregate findings:

* most links see at least one *dramatic* SNR dip over 2.5 years (Figure
  2a's mean max-min range of ~12 dB) while spending a tiny fraction of
  time impaired (Figure 2a's HDR(95%) < 2 dB for 83% of links);
* failure events last hours (Figure 3b);
* roughly a quarter of 100 Gbps failures keep SNR >= 3 dB (Figure 4c);
* the root-cause mix matches Figure 4a/4b (maintenance-window events and
  hardware dominate; fiber cuts are rare but long).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.optics.impairments import (
    Impairment,
    ImpairmentScope,
    RootCause,
)

SECONDS_PER_YEAR = 365.25 * 86_400.0


@dataclass(frozen=True)
class SeverityModel:
    """Severity distribution of one event category.

    Attributes:
        loss_of_light_prob: probability the event kills the signal
            entirely rather than degrading it.
        penalty_low_db / penalty_high_db: uniform range for partial
            (non-loss-of-light) SNR penalties.
        duration_median_h: median of the lognormal event duration.
        duration_sigma: lognormal shape parameter of the duration.
    """

    loss_of_light_prob: float
    penalty_low_db: float
    penalty_high_db: float
    duration_median_h: float
    duration_sigma: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_of_light_prob <= 1.0:
            raise ValueError("loss_of_light_prob must be a probability")
        if self.penalty_high_db < self.penalty_low_db:
            raise ValueError("penalty range inverted")
        if self.duration_median_h <= 0:
            raise ValueError("duration median must be positive")

    def draw_penalty_db(self, rng: np.random.Generator) -> float:
        """Sample the SNR penalty; ``inf`` encodes loss of light."""
        if rng.random() < self.loss_of_light_prob:
            return float("inf")
        return float(rng.uniform(self.penalty_low_db, self.penalty_high_db))

    def draw_duration_s(self, rng: np.random.Generator) -> float:
        hours = float(
            rng.lognormal(mean=np.log(self.duration_median_h), sigma=self.duration_sigma)
        )
        return hours * 3600.0


@dataclass(frozen=True)
class EventRates:
    """Arrival rates (events/year) and severities for every category.

    Cable-scope categories hit every wavelength of the fiber at once;
    the transceiver category is per wavelength.
    """

    maintenance_per_cable_year: float = 0.50
    fiber_cut_per_cable_year: float = 0.10
    hardware_per_cable_year: float = 0.70
    transceiver_per_wavelength_year: float = 0.035

    maintenance: SeverityModel = field(
        default_factory=lambda: SeverityModel(
            loss_of_light_prob=0.35,
            penalty_low_db=3.0,
            penalty_high_db=14.0,
            duration_median_h=2.5,
        )
    )
    fiber_cut: SeverityModel = field(
        default_factory=lambda: SeverityModel(
            loss_of_light_prob=1.0,
            penalty_low_db=0.0,
            penalty_high_db=0.0,
            duration_median_h=9.0,
            duration_sigma=0.6,
        )
    )
    hardware: SeverityModel = field(
        default_factory=lambda: SeverityModel(
            loss_of_light_prob=0.22,
            penalty_low_db=2.0,
            penalty_high_db=12.0,
            duration_median_h=4.0,
        )
    )
    transceiver: SeverityModel = field(
        default_factory=lambda: SeverityModel(
            loss_of_light_prob=0.30,
            penalty_low_db=4.0,
            penalty_high_db=16.0,
            duration_median_h=3.0,
        )
    )

    def scaled(self, factor: float) -> "EventRates":
        """A copy with every arrival rate multiplied by ``factor``.

        Severity distributions are untouched; useful for stress tests and
        ablations on event frequency.
        """
        if factor < 0:
            raise ValueError("rate factor must be non-negative")
        return replace(
            self,
            maintenance_per_cable_year=self.maintenance_per_cable_year * factor,
            fiber_cut_per_cable_year=self.fiber_cut_per_cable_year * factor,
            hardware_per_cable_year=self.hardware_per_cable_year * factor,
            transceiver_per_wavelength_year=(
                self.transceiver_per_wavelength_year * factor
            ),
        )


#: Calibrated default rates (see module docstring).
PAPER_EVENT_RATES = EventRates()


class EventSynthesizer:
    """Draws impairment event lists from the configured Poisson processes."""

    def __init__(self, rates: EventRates = PAPER_EVENT_RATES):
        self.rates = rates

    def _draw_category(
        self,
        rate_per_year: float,
        severity: SeverityModel,
        scope: ImpairmentScope,
        root_cause: RootCause,
        duration_s: float,
        rng: np.random.Generator,
    ) -> list[Impairment]:
        expected = rate_per_year * duration_s / SECONDS_PER_YEAR
        count = int(rng.poisson(expected))
        events = []
        for _ in range(count):
            start = float(rng.uniform(0.0, duration_s))
            events.append(
                Impairment(
                    start_s=start,
                    duration_s=severity.draw_duration_s(rng),
                    snr_penalty_db=severity.draw_penalty_db(rng),
                    scope=scope,
                    root_cause=root_cause,
                )
            )
        return events

    def cable_events(
        self, duration_s: float, rng: np.random.Generator
    ) -> list[Impairment]:
        """All cable-scope events over ``duration_s``, sorted by start."""
        r = self.rates
        events = (
            self._draw_category(
                r.maintenance_per_cable_year,
                r.maintenance,
                ImpairmentScope.CABLE,
                RootCause.MAINTENANCE,
                duration_s,
                rng,
            )
            + self._draw_category(
                r.fiber_cut_per_cable_year,
                r.fiber_cut,
                ImpairmentScope.CABLE,
                RootCause.FIBER_CUT,
                duration_s,
                rng,
            )
            + self._draw_category(
                r.hardware_per_cable_year,
                r.hardware,
                ImpairmentScope.CABLE,
                RootCause.HARDWARE,
                duration_s,
                rng,
            )
        )
        return sorted(events, key=lambda e: e.start_s)

    def wavelength_events(
        self, duration_s: float, rng: np.random.Generator
    ) -> list[Impairment]:
        """Single-wavelength events (transceiver faults) over ``duration_s``."""
        r = self.rates
        events = self._draw_category(
            r.transceiver_per_wavelength_year,
            r.transceiver,
            ImpairmentScope.WAVELENGTH,
            RootCause.HARDWARE,
            duration_s,
            rng,
        )
        # a share of wavelength faults is filed without a root cause,
        # matching the "undocumented" slice of Figure 4
        relabeled = []
        for event in events:
            if rng.random() < 0.4:
                event = replace(event, root_cause=RootCause.UNDOCUMENTED)
            relabeled.append(event)
        return sorted(relabeled, key=lambda e: e.start_s)
