"""The sampling grid for SNR telemetry.

The paper samples every link "every fifteen minutes for a period of 2.5
years".  A :class:`Timebase` pins down that grid once so every module
(trace synthesis, episode extraction, replay) agrees on sample <-> time
conversions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

SECONDS_PER_DAY = 86_400.0
DAYS_PER_YEAR = 365.25


@dataclass(frozen=True)
class Timebase:
    """A uniform sampling grid.

    Attributes:
        n_samples: number of samples on the grid.
        interval_s: spacing between samples, seconds (default 15 minutes).
        start_s: absolute time of the first sample, seconds.
    """

    n_samples: int
    interval_s: float = 900.0
    start_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_samples <= 0:
            raise ValueError("a timebase needs at least one sample")
        if self.interval_s <= 0:
            raise ValueError("sampling interval must be positive")

    @classmethod
    def from_duration(
        cls,
        *,
        years: float | None = None,
        days: float | None = None,
        interval_s: float = 900.0,
        start_s: float = 0.0,
    ) -> "Timebase":
        """Build a grid covering ``years`` or ``days`` (exactly one given).

        >>> Timebase.from_duration(days=1.0).n_samples
        96
        """
        if (years is None) == (days is None):
            raise ValueError("give exactly one of years= or days=")
        total_days = days if days is not None else years * DAYS_PER_YEAR
        duration_s = total_days * SECONDS_PER_DAY
        n = int(round(duration_s / interval_s))
        if n <= 0:
            raise ValueError(f"duration {total_days} days too short for the interval")
        return cls(n_samples=n, interval_s=interval_s, start_s=start_s)

    @property
    def duration_s(self) -> float:
        """Length of the covered interval, seconds."""
        return self.n_samples * self.interval_s

    @property
    def duration_days(self) -> float:
        return self.duration_s / SECONDS_PER_DAY

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def times_s(self) -> np.ndarray:
        """Absolute sample times (left edge of each interval)."""
        return self.start_s + self.interval_s * np.arange(self.n_samples)

    def index_at(self, t_s: float) -> int:
        """Index of the sample whose interval contains ``t_s``.

        Clamped to the grid, so callers can pass event times that spill
        slightly past either end of the horizon.
        """
        idx = int((t_s - self.start_s) // self.interval_s)
        return min(max(idx, 0), self.n_samples - 1)

    def slice_between(self, t0_s: float, t1_s: float) -> slice:
        """Samples whose intervals intersect [t0, t1), as a slice.

        Returns an empty slice when the window misses the horizon.
        """
        if t1_s <= self.start_s or t0_s >= self.end_s:
            return slice(0, 0)
        first = self.index_at(max(t0_s, self.start_s))
        # last sample strictly before t1
        last_exclusive = int(
            np.ceil((min(t1_s, self.end_s) - self.start_s) / self.interval_s)
        )
        return slice(first, max(last_exclusive, first))

    def __len__(self) -> int:
        return self.n_samples
