"""Range, threshold-crossing and failure-episode statistics.

These are the reductions the paper applies to its telemetry:

* **range** (max - min) and **HDR width** per link — Figure 2a;
* **feasible capacity at the HDR lower bound** — Figure 2b ("we
  calculate the feasible capacity for each link based on the lower SNR
  limit of its highest density region");
* **failure episodes**: maximal runs of samples below a capacity's SNR
  threshold — Figures 3a (counts), 3b (durations) and 4c (lowest SNR
  during the episode).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.optics.modulation import DEFAULT_MODULATIONS, ModulationTable
from repro.telemetry.hdr import HdrInterval, highest_density_region
from repro.telemetry.traces import SnrTrace


@dataclass(frozen=True)
class FailureEpisode:
    """One maximal run of samples below a threshold."""

    start_index: int
    n_samples: int
    min_snr_db: float
    interval_s: float

    @property
    def duration_s(self) -> float:
        return self.n_samples * self.interval_s

    @property
    def duration_hours(self) -> float:
        return self.duration_s / 3600.0


def snr_range_db(snr_db: np.ndarray) -> float:
    """The paper's "range" metric: max minus min of the trace."""
    data = np.asarray(snr_db, dtype=float)
    if data.size == 0:
        raise ValueError("empty trace")
    return float(data.max() - data.min())


def threshold_episodes(
    snr_db: np.ndarray, threshold_db: float, interval_s: float
) -> list[FailureEpisode]:
    """Maximal runs where ``snr < threshold`` (strict, per the up/down rule).

    A link configured at capacity c is *down* whenever its SNR is below
    c's required SNR; each maximal run of down samples is one failure
    event in the paper's counting.
    """
    data = np.asarray(snr_db, dtype=float)
    below = data < threshold_db
    if not below.any():
        return []
    # edges of runs: +1 where a run starts, -1 where it ends
    padded = np.diff(np.concatenate(([False], below, [False])).astype(int))
    starts = np.flatnonzero(padded == 1)
    ends = np.flatnonzero(padded == -1)  # exclusive
    episodes = []
    for s, e in zip(starts, ends):
        episodes.append(
            FailureEpisode(
                start_index=int(s),
                n_samples=int(e - s),
                min_snr_db=float(data[s:e].min()),
                interval_s=interval_s,
            )
        )
    return episodes


@dataclass(frozen=True)
class CapacityFailureStats:
    """Failure episodes a link would see if configured at one capacity."""

    capacity_gbps: float
    n_episodes: int
    durations_h: tuple[float, ...]
    min_snrs_db: tuple[float, ...]

    @property
    def total_downtime_h(self) -> float:
        return float(sum(self.durations_h))

    @property
    def mean_duration_h(self) -> float:
        return self.total_downtime_h / self.n_episodes if self.n_episodes else 0.0


@dataclass(frozen=True)
class LinkSummary:
    """Everything Figures 2-4 need about one link, without its raw trace.

    Produced by :func:`summarize_trace`; a
    :class:`~repro.telemetry.dataset.BackboneDataset` streams these so a
    2,000-link backbone never holds all traces in memory at once.
    """

    link_id: str
    cable_name: str
    baseline_db: float
    range_db: float
    hdr: HdrInterval
    feasible_capacity_gbps: float
    configured_capacity_gbps: float
    failures_by_capacity: tuple[CapacityFailureStats, ...]

    @property
    def hdr_width_db(self) -> float:
        return self.hdr.width

    @property
    def capacity_gain_gbps(self) -> float:
        """Headroom over the configured capacity (never negative)."""
        return max(self.feasible_capacity_gbps - self.configured_capacity_gbps, 0.0)

    def failures_at(self, capacity_gbps: float) -> CapacityFailureStats:
        for stats in self.failures_by_capacity:
            if stats.capacity_gbps == capacity_gbps:
                return stats
        raise KeyError(f"no failure stats for {capacity_gbps} Gbps")


def summarize_trace(
    trace: SnrTrace,
    *,
    table: ModulationTable = DEFAULT_MODULATIONS,
    configured_capacity_gbps: float = 100.0,
    hdr_mass: float = 0.95,
) -> LinkSummary:
    """Reduce one trace to the per-link statistics of Figures 2-4.

    The feasible capacity follows the paper exactly: it is the fastest
    rung whose threshold the *HDR lower bound* clears — i.e. capacity is
    chosen against the level the SNR sits above 95% of the time, not
    against transient dips.
    """
    hdr = highest_density_region(trace.snr_db, mass=hdr_mass)
    per_capacity = []
    for fmt in table:
        episodes = threshold_episodes(
            trace.snr_db, fmt.required_snr_db, trace.timebase.interval_s
        )
        per_capacity.append(
            CapacityFailureStats(
                capacity_gbps=fmt.capacity_gbps,
                n_episodes=len(episodes),
                durations_h=tuple(e.duration_hours for e in episodes),
                min_snrs_db=tuple(e.min_snr_db for e in episodes),
            )
        )
    return LinkSummary(
        link_id=trace.link_id,
        cable_name=trace.cable_name,
        baseline_db=trace.baseline_db,
        range_db=snr_range_db(trace.snr_db),
        hdr=hdr,
        feasible_capacity_gbps=table.feasible_capacity(hdr.low),
        configured_capacity_gbps=configured_capacity_gbps,
        failures_by_capacity=tuple(per_capacity),
    )
