"""Content-addressed on-disk cache for backbone link summaries.

Synthesising the full corpus (~2,000 wavelengths x 2.5 years at 15-minute
cadence) takes minutes; the figure benchmarks and ``examples/`` rerun it
for every invocation.  Since the corpus is fully determined by the
:class:`~repro.telemetry.dataset.BackboneConfig`, the modulation table
and the synthesis code itself, the reduction to
:class:`~repro.telemetry.stats.LinkSummary` records can be cached
content-addressed: the key is a stable hash over all three, so any
change to a knob *or to the generator code* transparently invalidates
old entries — there is no way to read a stale result.

Layout: one JSON document per key under the cache root,
``<root>/summaries-<key>.json`` (the format of
:mod:`repro.telemetry.io`).  The root defaults to ``~/.cache/repro`` and
is overridable via ``REPRO_CACHE_DIR``; ``REPRO_NO_CACHE=1`` (or the
CLI's ``--no-cache``) disables reads and writes entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.fingerprint import fingerprint_modules
from repro.optics.modulation import ModulationTable
from repro.telemetry.io import load_summaries, save_summaries
from repro.telemetry.stats import LinkSummary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.dataset import BackboneConfig

#: Environment variable overriding the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Set to 1/true/yes to disable the cache entirely.
NO_CACHE_ENV = "REPRO_NO_CACHE"

_SCHEMA = 1
_PREFIX = "summaries-"

#: Modules whose source determines the synthesis output byte-for-byte.
SYNTHESIS_MODULES = (
    "repro.optics.fiber",
    "repro.optics.impairments",
    "repro.optics.modulation",
    "repro.seeds",
    "repro.telemetry.dataset",
    "repro.telemetry.events",
    "repro.telemetry.hdr",
    "repro.telemetry.stats",
    "repro.telemetry.timebase",
    "repro.telemetry.traces",
)


def cache_enabled(override: bool | None = None) -> bool:
    """Resolve the cache on/off switch.

    ``override`` (a CLI/API argument) wins when given; otherwise the
    cache is on unless ``REPRO_NO_CACHE`` is set to a truthy value.
    """
    if override is not None:
        return bool(override)
    return os.environ.get(NO_CACHE_ENV, "").lower() not in ("1", "true", "yes")


def cache_dir() -> Path:
    """The cache root (not created until first write)."""
    env = os.environ.get(CACHE_DIR_ENV, "")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


def code_fingerprint() -> str:
    """Hash of the source files that determine synthesis output.

    Editing any module in the synthesis chain (trace generation, event
    processes, summary statistics, the optical budget, or the modulation
    ladder) changes this digest and therefore every cache key.
    """
    return fingerprint_modules(SYNTHESIS_MODULES)


def _table_signature(table: ModulationTable) -> list[list[float | str]]:
    return [
        [f.capacity_gbps, f.required_snr_db, f.bits_per_symbol, f.name]
        for f in table
    ]


def dataset_key(config: "BackboneConfig", table: ModulationTable) -> str:
    """Stable content hash for one (config, modulation table) corpus."""
    payload = {
        "schema": _SCHEMA,
        "code": code_fingerprint(),
        "config": dataclasses.asdict(config),
        "table": _table_signature(table),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def _entry_path(key: str) -> Path:
    return cache_dir() / f"{_PREFIX}{key}.json"


def load(key: str) -> list[LinkSummary] | None:
    """Return the cached summaries for ``key``, or None on a miss.

    A corrupt or unreadable entry counts as a miss (and is removed so it
    cannot shadow a future write).
    """
    path = _entry_path(key)
    if not path.is_file():
        return None
    try:
        return load_summaries(path)
    except Exception:
        path.unlink(missing_ok=True)
        return None


def store(key: str, summaries: Sequence[LinkSummary]) -> Path:
    """Atomically write one cache entry; returns its path."""
    path = _entry_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        save_summaries(tmp, summaries)
        tmp.replace(path)  # atomic on POSIX; readers never see partials
    finally:
        tmp.unlink(missing_ok=True)
    return path


def clear() -> int:
    """Delete every cache entry; returns the number removed."""
    root = cache_dir()
    if not root.is_dir():
        return 0
    removed = 0
    for entry in root.glob(f"{_PREFIX}*.json"):
        entry.unlink(missing_ok=True)
        removed += 1
    return removed
