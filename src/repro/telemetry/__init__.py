"""SNR telemetry substrate.

The paper's Section 2 analyses 2.5 years of 15-minute SNR samples for more
than 2,000 production wavelengths.  That dataset is proprietary, so this
package synthesises a statistically equivalent one:

* a sampling grid (:mod:`~repro.telemetry.timebase`),
* rare-event impairment processes per cable and per wavelength
  (:mod:`~repro.telemetry.events`),
* per-wavelength SNR traces: physical baseline + stationary noise + slow
  wander + event penalties (:mod:`~repro.telemetry.traces`),
* the highest-density-region statistic of Figure 2a
  (:mod:`~repro.telemetry.hdr`),
* range / threshold-crossing / failure-episode statistics
  (:mod:`~repro.telemetry.stats`),
* a backbone-scale dataset builder (:mod:`~repro.telemetry.dataset`).
"""

from repro.telemetry.timebase import Timebase
from repro.telemetry.hdr import HdrInterval, highest_density_region
from repro.telemetry.events import EventRates, EventSynthesizer, PAPER_EVENT_RATES
from repro.telemetry.traces import (
    MEASUREMENT_FLOOR_DB,
    NoiseModel,
    SnrTrace,
    synthesize_cable_traces,
)
from repro.telemetry.stats import (
    FailureEpisode,
    LinkSummary,
    snr_range_db,
    summarize_trace,
    threshold_episodes,
)
from repro.telemetry.dataset import BackboneConfig, BackboneDataset, CableSpec
from repro.telemetry import cache
from repro.telemetry.io import (
    load_summaries,
    load_traces,
    save_summaries,
    save_traces,
)
from repro.telemetry.anomaly import DipAlert, EwmaDipDetector, detect_dips

__all__ = [
    "cache",
    "load_summaries",
    "load_traces",
    "save_summaries",
    "save_traces",
    "DipAlert",
    "EwmaDipDetector",
    "detect_dips",
    "Timebase",
    "HdrInterval",
    "highest_density_region",
    "EventRates",
    "EventSynthesizer",
    "PAPER_EVENT_RATES",
    "MEASUREMENT_FLOOR_DB",
    "NoiseModel",
    "SnrTrace",
    "synthesize_cable_traces",
    "FailureEpisode",
    "LinkSummary",
    "snr_range_db",
    "summarize_trace",
    "threshold_episodes",
    "BackboneConfig",
    "BackboneDataset",
    "CableSpec",
]
