"""Backbone-scale synthetic telemetry dataset.

Builds the reproduction's stand-in for the paper's measurement corpus:
~55 fiber cables carrying ~2,000 wavelengths, each sampled every 15
minutes for 2.5 years.  Construction is fully deterministic given the
config seed.

Traces are generated *cable by cable* and reduced to
:class:`~repro.telemetry.stats.LinkSummary` records immediately, so the
full backbone never needs all raw traces in memory at once (a 2,000-link
corpus would be ~1.4 GB of float64 samples).

Two amortisation layers sit on top of the generator:

* **parallel synthesis** — cables are independently seeded (the rng key
  is ``(seed, crc32(name), offset)``, never shared state), so
  :meth:`BackboneDataset.summaries` and
  :meth:`BackboneDataset.iter_traces` accept a ``workers`` knob that
  fans cable jobs out over a process pool with bit-identical results;
* **an on-disk summary cache** (:mod:`repro.telemetry.cache`) —
  summaries are content-addressed by config + modulation table + code
  version, so repeat runs of benchmarks and examples skip synthesis
  entirely.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

import numpy as np

from repro import perf
from repro.parallel import WORKERS_ENV, pool_map, resolve_workers
from repro.optics.fiber import FiberCable, LineSystem
from repro.optics.modulation import DEFAULT_MODULATIONS, ModulationTable
from repro.seeds import component_rng
from repro.telemetry import cache as summary_cache
from repro.telemetry.events import EventRates, EventSynthesizer, PAPER_EVENT_RATES
from repro.telemetry.stats import LinkSummary, summarize_trace
from repro.telemetry.timebase import Timebase
from repro.telemetry.traces import NoiseModel, SnrTrace, synthesize_cable_traces

_T = TypeVar("_T")

__all__ = [
    "WORKERS_ENV",
    "BackboneConfig",
    "BackboneDataset",
    "CableSpec",
    "high_quality_cable_spec",
]


@dataclass(frozen=True)
class CableSpec:
    """Static description of one fiber cable in the backbone.

    The per-wavelength SNR baseline is the line-system budget minus the
    cable's quality penalty (aging, splices, high-loss sections) plus a
    fixed per-wavelength ripple across the DWDM grid.
    """

    name: str
    n_wavelengths: int
    n_spans: int
    span_length_km: float = 80.0
    launch_power_dbm: float = 0.0
    quality_penalty_db: float = 0.0
    ripple_db: tuple[float, ...] = ()
    noise: NoiseModel = field(default_factory=NoiseModel)

    def __post_init__(self) -> None:
        if self.n_wavelengths <= 0:
            raise ValueError("a cable carries at least one wavelength")
        if self.ripple_db and len(self.ripple_db) != self.n_wavelengths:
            raise ValueError("ripple must have one entry per wavelength")

    def line_system(self) -> LineSystem:
        cable = FiberCable(self.name, self.span_length_km, self.n_spans)
        return LineSystem(cable, launch_power_dbm=self.launch_power_dbm)

    def baselines_db(self) -> np.ndarray:
        """Per-wavelength baseline SNR in dB."""
        base = self.line_system().snr_db() - self.quality_penalty_db
        ripple = np.asarray(self.ripple_db or [0.0] * self.n_wavelengths)
        return base + ripple


@dataclass(frozen=True)
class BackboneConfig:
    """Knobs of the synthetic backbone.

    Defaults are calibrated so the summary statistics match the paper's
    (see EXPERIMENTS.md); tests use smaller horizons via ``years``.
    """

    n_cables: int = 55
    wavelengths_low: int = 24
    wavelengths_high: int = 56
    spans_low: int = 6
    spans_high: int = 45
    span_length_km: float = 80.0
    launch_power_dbm: float = 0.0
    #: scale of the exponential cable-quality penalty (dB)
    quality_penalty_scale_db: float = 1.8
    quality_penalty_cap_db: float = 8.0
    #: per-wavelength ripple standard deviation (dB), clipped at +-2
    ripple_sigma_db: float = 0.7
    #: lognormal parameters of the per-cable AR(1) noise sigma
    noise_sigma_median_db: float = 0.28
    noise_sigma_spread: float = 0.55
    noise_sigma_cap_db: float = 0.65
    #: operators provision margin: the cable-centre baseline never drops
    #: below this, so healthy links do not chatter across the 100 Gbps
    #: threshold on noise alone (Section 2.1: "operators ... provision
    #: large margins")
    min_centre_baseline_db: float = 12.0
    noise_rho: float = 0.9
    wander_low_db: float = 0.05
    wander_high_db: float = 0.55
    years: float = 2.5
    interval_s: float = 900.0
    configured_capacity_gbps: float = 100.0
    event_rates: EventRates = field(default_factory=lambda: PAPER_EVENT_RATES)
    seed: int = 2017

    def timebase(self) -> Timebase:
        return Timebase.from_duration(years=self.years, interval_s=self.interval_s)

    @classmethod
    def small(cls, *, years: float = 0.25, n_cables: int = 6, seed: int = 7) -> "BackboneConfig":
        """A test-sized backbone (a few hundred links, a season of data)."""
        return cls(n_cables=n_cables, years=years, seed=seed)


def _synthesize_cable(
    config: BackboneConfig, spec: CableSpec, seed_offset: int = 0
) -> list[SnrTrace]:
    """Synthesize one cable's traces (module-level so workers can pickle it).

    The rng is keyed on ``(config.seed, crc32(name), seed_offset)`` —
    stable across processes (str ``hash()`` is salted, ``zlib.crc32`` is
    not), so a pool worker produces exactly the bytes the serial path
    would.
    """
    timebase = config.timebase()
    rng = component_rng(config.seed, spec.name, seed_offset)
    synth = EventSynthesizer(config.event_rates)
    cable_events = synth.cable_events(timebase.duration_s, rng)
    wavelength_events = {
        idx: events
        for idx in range(spec.n_wavelengths)
        if (events := synth.wavelength_events(timebase.duration_s, rng))
    }
    return synthesize_cable_traces(
        spec.name,
        spec.baselines_db(),
        timebase,
        cable_events,
        wavelength_events,
        spec.noise,
        rng,
    )


def _summarize_cable(
    config: BackboneConfig, spec: CableSpec, table: ModulationTable
) -> list[LinkSummary]:
    """Synthesize + reduce one cable inside a worker.

    Reducing in the worker keeps the parallel path's inter-process
    traffic small: summaries are a few KB per cable, raw traces tens of
    MB.
    """
    return [
        summarize_trace(
            trace,
            table=table,
            configured_capacity_gbps=config.configured_capacity_gbps,
        )
        for trace in _synthesize_cable(config, spec)
    ]


class BackboneDataset:
    """Deterministic synthetic backbone: cable specs, traces, summaries."""

    def __init__(self, config: BackboneConfig | None = None):
        self.config = config if config is not None else BackboneConfig()
        self._specs: list[CableSpec] | None = None

    def cable_specs(self) -> list[CableSpec]:
        """The backbone's cables (memoised; deterministic from the seed)."""
        if self._specs is None:
            self._specs = self._draw_specs()
        return self._specs

    def _draw_specs(self) -> list[CableSpec]:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        specs = []
        for i in range(cfg.n_cables):
            n_wave = int(rng.integers(cfg.wavelengths_low, cfg.wavelengths_high + 1))
            n_spans = int(rng.integers(cfg.spans_low, cfg.spans_high + 1))
            line_snr = LineSystem(
                FiberCable(f"cable{i:03d}", cfg.span_length_km, n_spans),
                launch_power_dbm=cfg.launch_power_dbm,
            ).snr_db()
            penalty = min(
                float(rng.exponential(cfg.quality_penalty_scale_db)),
                cfg.quality_penalty_cap_db,
                max(line_snr - cfg.min_centre_baseline_db, 0.0),
            )
            ripple = np.clip(
                rng.normal(0.0, cfg.ripple_sigma_db, size=n_wave), -2.0, 2.0
            )
            sigma = min(
                float(
                    rng.lognormal(
                        mean=np.log(cfg.noise_sigma_median_db),
                        sigma=cfg.noise_sigma_spread,
                    )
                ),
                cfg.noise_sigma_cap_db,
            )
            noise = NoiseModel(
                sigma_db=sigma,
                rho=cfg.noise_rho,
                wander_amplitude_db=float(
                    rng.uniform(cfg.wander_low_db, cfg.wander_high_db)
                ),
            )
            specs.append(
                CableSpec(
                    name=f"cable{i:03d}",
                    n_wavelengths=n_wave,
                    n_spans=n_spans,
                    span_length_km=cfg.span_length_km,
                    launch_power_dbm=cfg.launch_power_dbm,
                    quality_penalty_db=penalty,
                    ripple_db=tuple(float(r) for r in ripple),
                    noise=noise,
                )
            )
        return specs

    def n_links(self) -> int:
        return sum(spec.n_wavelengths for spec in self.cable_specs())

    def cable_traces(self, spec: CableSpec, *, seed_offset: int = 0) -> list[SnrTrace]:
        """Synthesize the SNR traces of one cable."""
        return _synthesize_cable(self.config, spec, seed_offset)

    def _map_cables(
        self, fn: Callable[[CableSpec], _T], workers: int
    ) -> Iterator[_T]:
        """The single cable traversal every corpus-level API goes through.

        Serial when ``workers <= 1``; otherwise cable jobs fan out over a
        pool, results arriving in cable order either way.
        """
        specs = self.cable_specs()
        if workers <= 1 or len(specs) <= 1:
            for spec in specs:
                yield fn(spec)
        else:
            yield from pool_map(fn, specs, workers)

    def iter_traces(self, *, workers: int | None = None) -> Iterator[SnrTrace]:
        """All traces, one cable at a time (bounded memory).

        ``workers`` > 1 synthesises cables on a process pool (thread
        fallback); ordering and content are identical to serial.
        """
        fn = functools.partial(_synthesize_cable, self.config)
        for cable in self._map_cables(fn, resolve_workers(workers)):
            yield from cable

    def summaries(
        self,
        *,
        table: ModulationTable = DEFAULT_MODULATIONS,
        workers: int | None = None,
        cache: bool | None = None,
    ) -> list[LinkSummary]:
        """Per-link summary statistics for the whole backbone.

        Args:
            table: modulation ladder for feasibility/failure thresholds.
            workers: cable-level parallelism; ``None`` defers to the
                ``REPRO_WORKERS`` env var (default serial).  Results are
                bit-identical regardless of the worker count.
            cache: force the on-disk summary cache on/off; ``None``
                defers to ``REPRO_NO_CACHE`` (default on).  Keys include
                the config, the table and a synthesis-code fingerprint,
                so stale reads are impossible.
        """
        cfg = self.config
        n_workers = resolve_workers(workers)
        use_cache = summary_cache.cache_enabled(cache)
        key = None
        if use_cache:
            key = summary_cache.dataset_key(cfg, table)
            cached = summary_cache.load(key)
            if cached is not None:
                perf.event("synthesis.cache_hit")
                return cached
            perf.event("synthesis.cache_miss")
        fn = functools.partial(_summarize_cable, cfg, table=table)
        with perf.timer(
            "synthesis.summaries", workers=n_workers, n_cables=cfg.n_cables
        ):
            out = [
                summary
                for cable in self._map_cables(fn, n_workers)
                for summary in cable
            ]
        if use_cache and key is not None:
            summary_cache.store(key, out)
        return out


def high_quality_cable_spec(
    *, n_wavelengths: int = 40, seed: int = 40_2017
) -> CableSpec:
    """The Figure-3a workload: a premium cable where every denomination
    is feasible, but 200 Gbps sits close to some wavelengths' noise floor.

    Baselines spread between roughly 15.2 and 17.5 dB: all wavelengths
    clear the 14.5 dB / 200 Gbps threshold, yet the lowest ones are only
    a few noise standard deviations above it — exactly the regime where
    the paper observes failure counts exploding at 200 Gbps while staying
    flat up to 175 Gbps.
    """
    rng = np.random.default_rng(seed)
    ripple = rng.uniform(15.0, 17.5, size=n_wavelengths)
    # express baselines via ripple around a 12-span line system's budget
    reference = LineSystem(
        FiberCable("hq-cable", 80.0, 12), launch_power_dbm=0.0
    ).snr_db()
    return CableSpec(
        name="hq-cable",
        n_wavelengths=n_wavelengths,
        n_spans=12,
        quality_penalty_db=0.0,
        ripple_db=tuple(float(b - reference) for b in ripple),
        noise=NoiseModel(sigma_db=0.22, rho=0.9, wander_amplitude_db=0.15),
    )
