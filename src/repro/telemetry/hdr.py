"""Highest-density-region (HDR) statistic of Figure 2a.

The paper defines the HDR of a link's SNR as "the smallest interval in
which 95% or more of the SNR values are concentrated".  For an empirical
sample that is the classic shortest-interval estimator: sort the samples
and slide a window of ``ceil(mass * n)`` consecutive order statistics,
keeping the narrowest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class HdrInterval:
    """The smallest interval holding at least ``mass`` of the sample."""

    low: float
    high: float
    mass: float

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def highest_density_region(samples: np.ndarray, mass: float = 0.95) -> HdrInterval:
    """Smallest interval containing at least ``mass`` of ``samples``.

    Args:
        samples: 1-D array of observations (need not be sorted).
        mass: required fraction of samples inside the interval, in (0, 1].

    Returns:
        The narrowest ``[low, high]`` covering ``ceil(mass * n)`` samples.

    The estimator is exact for the empirical distribution: no binning or
    density fitting, so results are deterministic and reproducible.
    Complexity is O(n log n) for the sort plus O(n) for the scan.
    """
    if not 0.0 < mass <= 1.0:
        raise ValueError(f"mass must be in (0, 1], got {mass}")
    data = np.asarray(samples, dtype=float).ravel()
    if data.size == 0:
        raise ValueError("cannot compute an HDR of an empty sample")
    if np.isnan(data).any():
        raise ValueError("samples contain NaN")

    n = data.size
    k = math.ceil(mass * n)  # samples the window must cover
    if k >= n:
        return HdrInterval(float(data.min()), float(data.max()), mass)

    ordered = np.sort(data)
    widths = ordered[k - 1 :] - ordered[: n - k + 1]
    best = int(np.argmin(widths))
    return HdrInterval(float(ordered[best]), float(ordered[best + k - 1]), mass)
