"""Per-wavelength SNR trace synthesis.

A trace is the sum of four components, floored at the measurement limit:

``snr(t) = baseline + wander(t) + noise(t) - event_penalties(t)``

* **baseline** — the physical operating point of the wavelength, from the
  line-system budget (:mod:`repro.optics.fiber`) plus per-wavelength
  ripple across the DWDM grid;
* **wander** — a slow sinusoidal seasonal/thermal drift (fraction of a
  dB to ~1 dB peak);
* **noise** — stationary AR(1) measurement/polarisation noise at the
  15-minute cadence;
* **event penalties** — the rare dips of :mod:`repro.telemetry.events`;
  loss-of-light pins the sample to the floor.

Receivers cannot report SNR below the DSP's measurement limit, so traces
are clipped at :data:`MEASUREMENT_FLOOR_DB` (0 dB) — which is why the
paper's Figure 4c axis starts at 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np
from scipy.signal import lfilter

from repro.optics.impairments import Impairment, ImpairmentScope
from repro.telemetry.timebase import Timebase

#: Lowest SNR a coherent receiver reports; loss of light reads as this.
MEASUREMENT_FLOOR_DB = 0.0


@dataclass(frozen=True)
class NoiseModel:
    """Stationary fluctuation model shared by the wavelengths of a cable.

    Attributes:
        sigma_db: standard deviation of the AR(1) noise, dB.
        rho: lag-1 autocorrelation at the sampling cadence.
        wander_amplitude_db: peak amplitude of the seasonal sinusoid.
        wander_period_days: period of the seasonal sinusoid.
    """

    sigma_db: float = 0.15
    rho: float = 0.9
    wander_amplitude_db: float = 0.3
    wander_period_days: float = 365.25

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ValueError("noise sigma must be non-negative")
        if not 0.0 <= self.rho < 1.0:
            raise ValueError("rho must be in [0, 1)")
        if self.wander_amplitude_db < 0:
            raise ValueError("wander amplitude must be non-negative")
        if self.wander_period_days <= 0:
            raise ValueError("wander period must be positive")


@dataclass(frozen=True)
class SnrTrace:
    """One wavelength's SNR time series plus its provenance."""

    link_id: str
    cable_name: str
    timebase: Timebase
    snr_db: np.ndarray
    baseline_db: float
    events: tuple[Impairment, ...]

    def __post_init__(self) -> None:
        if len(self.snr_db) != self.timebase.n_samples:
            raise ValueError(
                f"trace length {len(self.snr_db)} does not match "
                f"timebase with {self.timebase.n_samples} samples"
            )

    def __len__(self) -> int:
        return len(self.snr_db)

    @property
    def min_db(self) -> float:
        return float(self.snr_db.min())

    @property
    def max_db(self) -> float:
        return float(self.snr_db.max())


def iter_link_samples(
    traces_by_link: Mapping[str, SnrTrace],
    *,
    timebase: Timebase | None = None,
    stride: int = 1,
    max_samples: int | None = None,
) -> Iterator[tuple[int, float, dict[str, float]]]:
    """Stream ``(index, time_s, snr_by_link)`` one grid point at a time.

    This is the per-sample view replay-style consumers (the event
    engine) walk: each yielded dict is built on demand, so a multi-year
    corpus is never expanded into per-sample dicts up front.  ``stride``
    subsamples the grid (every ``stride``-th point), ``max_samples``
    caps how many points are yielded.

    ``timebase`` defaults to the first trace's; callers that already
    validated a shared grid (:class:`repro.engine.sources.TelemetryFeed`)
    pass it explicitly.
    """
    if not traces_by_link:
        raise ValueError("need at least one trace")
    if stride < 1:
        raise ValueError("stride must be >= 1")
    if timebase is None:
        timebase = next(iter(traces_by_link.values())).timebase
    indices: Iterator[int] | range = range(0, timebase.n_samples, stride)
    if max_samples is not None:
        indices = list(indices)[:max_samples]
    for index in indices:
        yield (
            index,
            timebase.start_s + index * timebase.interval_s,
            {
                link_id: float(trace.snr_db[index])
                for link_id, trace in traces_by_link.items()
            },
        )


def _ar1_noise(
    n_samples: int, n_series: int, sigma: float, rho: float, rng: np.random.Generator
) -> np.ndarray:
    """Stationary AR(1) noise, shape (n_series, n_samples).

    Implemented as an IIR filter over white innovations with the initial
    filter state drawn from the stationary distribution, so there is no
    burn-in transient at the start of a trace.
    """
    if sigma == 0.0:
        return np.zeros((n_series, n_samples))
    innovations = rng.standard_normal((n_series, n_samples))
    y_prev = rng.standard_normal(n_series)  # stationary (unit-variance) start
    if rho == 0.0:
        # white noise: the filter is the identity (y_prev only feeds the
        # zero-weight initial state, but must still be drawn so the rng
        # stream stays identical to the filtered path)
        return sigma * innovations
    scale = np.sqrt(1.0 - rho * rho)
    zi = (rho * y_prev)[:, None]
    out, _ = lfilter([scale], [1.0, -rho], innovations, axis=1, zi=zi)
    return sigma * out


def _apply_events(
    snr: np.ndarray,
    events: list[Impairment],
    timebase: Timebase,
    wavelength_index: int | None,
) -> None:
    """Subtract event penalties in place.

    ``wavelength_index`` selects which row a WAVELENGTH-scope event hits;
    pass None when ``snr`` is a single row already selected.
    """
    for event in events:
        window = timebase.slice_between(event.start_s, event.end_s)
        if window.start == window.stop:
            continue
        penalty = event.snr_penalty_db
        if event.scope is ImpairmentScope.CABLE:
            rows: slice | int = slice(None)
        else:
            rows = wavelength_index if wavelength_index is not None else 0
        if np.isinf(penalty):
            snr[rows, window] = MEASUREMENT_FLOOR_DB - 100.0  # clipped later
        else:
            snr[rows, window] -= penalty


def synthesize_cable_traces(
    cable_name: str,
    baselines_db: np.ndarray,
    timebase: Timebase,
    cable_events: list[Impairment],
    wavelength_events: dict[int, list[Impairment]],
    noise: NoiseModel,
    rng: np.random.Generator,
) -> list[SnrTrace]:
    """Generate SNR traces for every wavelength of one cable.

    Args:
        cable_name: identifier used in link ids (``{cable}:w{idx}``).
        baselines_db: per-wavelength baseline SNR, shape (n_wavelengths,).
        timebase: sampling grid.
        cable_events: impairments hitting all wavelengths together.
        wavelength_events: impairments per wavelength index.
        noise: stationary fluctuation model.
        rng: source of randomness for noise and wander phase.

    Cable-level events land on all rows at the same samples — this is the
    correlated-dip structure visible in the paper's Figure 1.
    """
    baselines = np.asarray(baselines_db, dtype=float)
    if baselines.ndim != 1 or baselines.size == 0:
        raise ValueError("baselines_db must be a non-empty 1-D array")
    n_wave = baselines.size
    n = timebase.n_samples

    snr = np.tile(baselines[:, None], (1, n))
    snr += _ar1_noise(n, n_wave, noise.sigma_db, noise.rho, rng)

    if noise.wander_amplitude_db > 0:
        t_days = timebase.times_s() / 86_400.0
        phase = rng.uniform(0.0, 2.0 * np.pi)
        wander = noise.wander_amplitude_db * np.sin(
            2.0 * np.pi * t_days / noise.wander_period_days + phase
        )
        snr += wander[None, :]

    _apply_events(snr, cable_events, timebase, wavelength_index=None)
    for idx, events in wavelength_events.items():
        if not 0 <= idx < n_wave:
            raise ValueError(f"wavelength index {idx} out of range 0..{n_wave - 1}")
        _apply_events(snr, events, timebase, wavelength_index=idx)

    np.clip(snr, MEASUREMENT_FLOOR_DB, None, out=snr)

    all_events_sorted = sorted(cable_events, key=lambda e: e.start_s)
    traces = []
    for idx in range(n_wave):
        own = sorted(
            all_events_sorted + wavelength_events.get(idx, []),
            key=lambda e: e.start_s,
        )
        traces.append(
            SnrTrace(
                link_id=f"{cable_name}:w{idx:03d}",
                cable_name=cable_name,
                timebase=timebase,
                snr_db=snr[idx],
                baseline_db=float(baselines[idx]),
                events=tuple(own),
            )
        )
    return traces
