"""Online SNR anomaly detection.

A dynamic-capacity controller that only reacts *after* SNR crosses a
threshold still takes a hit while the BVT re-modulates.  A monitoring
loop that flags abnormal SNR behaviour early lets the controller walk
the capacity down before the link actually fails — turning even the
detection into a proactive flap.

The detector is a standard EWMA control chart: track an exponentially
weighted mean and variance of the (slowly varying) signal; samples more
than ``k_sigma`` below the band flag a dip, and recovery is declared
once samples return inside it.  Robustness details that matter on real
telemetry are handled: warm-up before alarming, and freezing the
statistics during an alarm so the dip itself does not poison the
baseline.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.telemetry.traces import SnrTrace


class SignalState(enum.Enum):
    WARMING_UP = "warming_up"
    NORMAL = "normal"
    DIP = "dip"


@dataclass(frozen=True)
class DipAlert:
    """One detected SNR dip."""

    start_index: int
    end_index: int  # exclusive; == start while the dip is still open
    depth_db: float  # baseline minus the deepest sample seen

    @property
    def n_samples(self) -> int:
        return self.end_index - self.start_index


class EwmaDipDetector:
    """Streaming EWMA control chart over one link's SNR.

    Args:
        alpha: EWMA weight of the newest sample (0 < alpha < 1; small =
            slow baseline).
        k_sigma: alarm threshold in baseline standard deviations.
        warmup: samples consumed before alarms may fire.
        min_sigma_db: variance floor so an ultra-quiet link still needs
            a real dip (not a 0.01 dB wiggle) to alarm.
    """

    def __init__(
        self,
        *,
        alpha: float = 0.05,
        k_sigma: float = 5.0,
        warmup: int = 32,
        min_sigma_db: float = 0.08,
    ):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if k_sigma <= 0:
            raise ValueError("k_sigma must be positive")
        if warmup < 2:
            raise ValueError("warmup must be at least 2 samples")
        if min_sigma_db <= 0:
            raise ValueError("min_sigma_db must be positive")
        self.alpha = alpha
        self.k_sigma = k_sigma
        self.warmup = warmup
        self.min_sigma_db = min_sigma_db
        self._mean = 0.0
        self._var = 0.0
        self._n = 0
        self._state = SignalState.WARMING_UP
        self._dip_start = 0
        self._dip_min = math.inf
        #: non-finite samples skipped (telemetry dropouts); they never
        #: touch the EWMA statistics or the dip state machine
        self.n_skipped = 0

    @property
    def state(self) -> SignalState:
        return self._state

    @property
    def baseline_db(self) -> float:
        return self._mean

    @property
    def sigma_db(self) -> float:
        return max(math.sqrt(max(self._var, 0.0)), self.min_sigma_db)

    def update(self, snr_db: float, index: int) -> DipAlert | None:
        """Feed one sample; returns a closed :class:`DipAlert` when a
        dip ends, None otherwise.

        A NaN/inf sample (a telemetry dropout) is skipped and counted:
        the statistics, warm-up progress and any open dip are left
        exactly as they were, so a dropout can neither poison the
        baseline nor fake a recovery.
        """
        if not math.isfinite(snr_db):
            self.n_skipped += 1
            return None
        if self._n < self.warmup:
            # classic running mean/variance during warm-up
            self._n += 1
            delta = snr_db - self._mean
            self._mean += delta / self._n
            self._var += (delta * (snr_db - self._mean) - self._var) / self._n
            if self._n >= self.warmup:
                self._state = SignalState.NORMAL
            return None

        threshold = self._mean - self.k_sigma * self.sigma_db
        if self._state is SignalState.NORMAL:
            if snr_db < threshold:
                self._state = SignalState.DIP
                self._dip_start = index
                self._dip_min = snr_db
                return None
            # update statistics only on in-band samples
            delta = snr_db - self._mean
            self._mean += self.alpha * delta
            self._var = (1.0 - self.alpha) * (self._var + self.alpha * delta * delta)
            return None

        # in a dip: statistics frozen, track the depth, wait for recovery
        self._dip_min = min(self._dip_min, snr_db)
        if snr_db >= threshold:
            alert = DipAlert(
                start_index=self._dip_start,
                end_index=index,
                depth_db=self._mean - self._dip_min,
            )
            self._state = SignalState.NORMAL
            return alert
        return None

    def flush(self, end_index: int) -> DipAlert | None:
        """Close an open dip at end-of-stream (for batch analyses)."""
        if self._state is not SignalState.DIP:
            return None
        alert = DipAlert(
            start_index=self._dip_start,
            end_index=end_index,
            depth_db=self._mean - self._dip_min,
        )
        self._state = SignalState.NORMAL
        return alert


def detect_dips(
    trace: SnrTrace,
    *,
    alpha: float = 0.05,
    k_sigma: float = 5.0,
    warmup: int = 32,
) -> list[DipAlert]:
    """Batch-run the detector over a whole trace."""
    detector = EwmaDipDetector(alpha=alpha, k_sigma=k_sigma, warmup=warmup)
    alerts = []
    for i, sample in enumerate(np.asarray(trace.snr_db, dtype=float)):
        alert = detector.update(float(sample), i)
        if alert is not None:
            alerts.append(alert)
    tail = detector.flush(len(trace.snr_db))
    if tail is not None:
        alerts.append(tail)
    return alerts
