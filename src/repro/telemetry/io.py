"""Persistence for telemetry traces and link summaries.

Trace synthesis for a full backbone takes minutes; analyses over the
same corpus should not pay that repeatedly.  Traces round-trip through
compressed ``.npz`` (one file per cable), summaries through JSON — both
self-describing enough to reload without the generating config.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.telemetry.hdr import HdrInterval
from repro.telemetry.stats import CapacityFailureStats, LinkSummary
from repro.telemetry.timebase import Timebase
from repro.telemetry.traces import SnrTrace

_FORMAT_VERSION = 1


def save_traces(path: str | Path, traces: Sequence[SnrTrace]) -> Path:
    """Write one cable's traces to a compressed ``.npz``.

    Events are not persisted (they are derivable from the dataset seed
    and are irrelevant to reloaded-trace analyses); a reloaded trace has
    an empty event tuple.
    """
    traces = list(traces)
    if not traces:
        raise ValueError("nothing to save")
    timebases = {t.timebase for t in traces}
    if len(timebases) != 1:
        raise ValueError("all traces in one file must share a timebase")
    cables = {t.cable_name for t in traces}
    if len(cables) != 1:
        raise ValueError("one file holds one cable")
    tb = traces[0].timebase
    path = Path(path)
    np.savez_compressed(
        path,
        version=np.array([_FORMAT_VERSION]),
        snr_db=np.stack([t.snr_db for t in traces]).astype(np.float32),
        baselines_db=np.array([t.baseline_db for t in traces]),
        link_ids=np.array([t.link_id for t in traces]),
        cable_name=np.array([traces[0].cable_name]),
        timebase=np.array([tb.n_samples, tb.interval_s, tb.start_s]),
    )
    # np.savez appends .npz when missing
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_traces(path: str | Path) -> list[SnrTrace]:
    """Reload traces written by :func:`save_traces`."""
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace file version {version}")
        n_samples, interval_s, start_s = data["timebase"]
        tb = Timebase(
            n_samples=int(n_samples),
            interval_s=float(interval_s),
            start_s=float(start_s),
        )
        cable = str(data["cable_name"][0])
        return [
            SnrTrace(
                link_id=str(link_id),
                cable_name=cable,
                timebase=tb,
                snr_db=snr.astype(float),
                baseline_db=float(baseline),
                events=(),
            )
            for link_id, snr, baseline in zip(
                data["link_ids"], data["snr_db"], data["baselines_db"]
            )
        ]


def _summary_to_dict(summary: LinkSummary) -> dict:
    return {
        "link_id": summary.link_id,
        "cable_name": summary.cable_name,
        "baseline_db": summary.baseline_db,
        "range_db": summary.range_db,
        "hdr": {
            "low": summary.hdr.low,
            "high": summary.hdr.high,
            "mass": summary.hdr.mass,
        },
        "feasible_capacity_gbps": summary.feasible_capacity_gbps,
        "configured_capacity_gbps": summary.configured_capacity_gbps,
        "failures_by_capacity": [
            {
                "capacity_gbps": s.capacity_gbps,
                "n_episodes": s.n_episodes,
                "durations_h": list(s.durations_h),
                "min_snrs_db": list(s.min_snrs_db),
            }
            for s in summary.failures_by_capacity
        ],
    }


def _summary_from_dict(payload: dict) -> LinkSummary:
    return LinkSummary(
        link_id=payload["link_id"],
        cable_name=payload["cable_name"],
        baseline_db=payload["baseline_db"],
        range_db=payload["range_db"],
        hdr=HdrInterval(
            low=payload["hdr"]["low"],
            high=payload["hdr"]["high"],
            mass=payload["hdr"]["mass"],
        ),
        feasible_capacity_gbps=payload["feasible_capacity_gbps"],
        configured_capacity_gbps=payload["configured_capacity_gbps"],
        failures_by_capacity=tuple(
            CapacityFailureStats(
                capacity_gbps=s["capacity_gbps"],
                n_episodes=s["n_episodes"],
                durations_h=tuple(s["durations_h"]),
                min_snrs_db=tuple(s["min_snrs_db"]),
            )
            for s in payload["failures_by_capacity"]
        ),
    )


def save_summaries(path: str | Path, summaries: Sequence[LinkSummary]) -> Path:
    """Write link summaries as a JSON document."""
    summaries = list(summaries)
    if not summaries:
        raise ValueError("nothing to save")
    path = Path(path)
    document = {
        "version": _FORMAT_VERSION,
        "n_links": len(summaries),
        "summaries": [_summary_to_dict(s) for s in summaries],
    }
    path.write_text(json.dumps(document, sort_keys=True))
    return path


def load_summaries(path: str | Path) -> list[LinkSummary]:
    """Reload summaries written by :func:`save_summaries`."""
    document = json.loads(Path(path).read_text())
    version = document.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported summary file version {version}")
    return [_summary_from_dict(p) for p in document["summaries"]]
