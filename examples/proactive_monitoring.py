#!/usr/bin/env python
"""Reaction time matters: scheduled vs. reactive vs. proactive control.

A TE controller that only recomputes every few hours is blind to a dip
that starts between rounds — the affected link silently drops traffic
until the next recomputation.  This example injects a mid-interval
amplifier dip into a week of telemetry and compares three reaction
modes:

* scheduled — rounds only (today's SWAN-style cadence);
* reactive  — an emergency round the moment a threshold is crossed;
* proactive — an emergency round the moment the EWMA monitor flags the
  dip, downgrading a rung before the threshold is even reached.

Run:  python examples/proactive_monitoring.py
"""

import numpy as np

from repro.analysis import render_series
from repro.core import DynamicCapacityController, run_policy
from repro.net import abilene, gravity_demands
from repro.optics.impairments import AmplifierDegradation
from repro.sim import reactive_replay
from repro.telemetry import NoiseModel, Timebase
from repro.telemetry.traces import synthesize_cable_traces


def build_telemetry(topology, days=7.0, seed=5):
    """A week of telemetry with a slow dip starting between TE rounds."""
    timebase = Timebase.from_duration(days=days)
    link_ids = [l.link_id for l in topology.real_links()]
    # 45 minutes past a round boundary, 8 hours long, 15 -> 5 dB
    event = AmplifierDegradation(3 * 86_400.0 + 2_700.0, 8 * 3600.0, 10.0)
    rng = np.random.default_rng(seed)
    traces = synthesize_cable_traces(
        "monitored-fiber",
        rng.uniform(14.0, 16.5, size=len(link_ids)),
        timebase,
        [event],
        {},
        NoiseModel(sigma_db=0.12, wander_amplitude_db=0.1),
        rng,
    )
    return dict(zip(link_ids, traces))


def main() -> None:
    topology = abilene()
    demands = gravity_demands(topology, 3500.0, np.random.default_rng(2))
    traces = build_telemetry(topology)

    rows = []
    for mode in ("scheduled", "reactive", "proactive"):
        controller = DynamicCapacityController(
            topology, policy=run_policy(), seed=0
        )
        result = reactive_replay(
            controller, traces, demands, te_interval_s=4 * 3600.0, mode=mode
        )
        rows.append(
            (
                mode,
                result.lost_gbps_hours,
                result.n_scheduled_rounds,
                result.n_emergency_rounds,
            )
        )

    print(
        render_series(
            "reaction modes, one week with a mid-interval dip",
            rows,
            header=["mode", "lost Gbps-h", "rounds", "emergencies"],
        )
    )
    scheduled_loss = rows[0][1]
    reactive_loss = rows[1][1]
    if scheduled_loss > 0:
        saved = 100.0 * (1.0 - reactive_loss / scheduled_loss)
        print(
            f"\nreacting at telemetry cadence instead of TE cadence avoids "
            f"{saved:.0f}% of the dip's traffic loss"
        )


if __name__ == "__main__":
    main()
