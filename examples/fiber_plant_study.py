#!/usr/bin/env python
"""End-to-end: a geographically real fiber plant under dynamic capacity.

Builds the optical plant beneath a 21-node US backbone — cables sized
by great-circle distance, DWDM channels assigned per fiber, SNR
baselines from each cable's amplifier chain — then:

1. shows the plant inventory and where the SNR headroom physically is;
2. prices the headroom and availability gains in dollars;
3. asks the network-level availability question: for each cable, what
   does a failure cost under the binary rule vs. a dynamic flap;
4. replays a month of telemetry through the closed-loop controller.

Run:  python examples/fiber_plant_study.py
"""

import numpy as np

from repro.analysis import render_series
from repro.core import DynamicCapacityController, walk_policy
from repro.net import (
    FiberPlant,
    gravity_demands,
    site_coordinates,
    us_backbone_like,
)
from repro.sim import (
    availability_report,
    cable_event_impacts,
    estimate_savings,
    replay_controller,
)
from repro.telemetry.stats import summarize_trace


def show_plant(plant: FiberPlant) -> None:
    print(f"{plant}\n")
    segments = sorted(
        plant.segments.values(), key=lambda s: s.distance_km, reverse=True
    )
    baselines = plant.baseline_snrs()
    spectrum = plant.spectrum_assignments()
    rows = []
    for segment in segments[:6]:
        snr = np.mean([baselines[i] for i in segment.link_ids])
        rows.append(
            (
                segment.cable_name.removeprefix("fiber:"),
                segment.distance_km,
                segment.n_spans,
                snr,
                spectrum[segment.cable_name].n_assigned,
            )
        )
    print(
        render_series(
            "longest cables (SNR from the amplifier-chain budget)",
            rows,
            header=["cable", "km", "spans", "SNR dB", "channels"],
        )
    )


def price_the_headroom(plant: FiberPlant, traces) -> None:
    trace_list = list(traces.values())
    summaries = [summarize_trace(t) for t in trace_list]
    availability = availability_report(trace_list)
    savings = estimate_savings(
        summaries, availability, observed_years=30.0 / 365.25
    )
    print(f"\nheadroom across the plant: {savings.headroom_gbps:.0f} Gbps")
    print(f"capex deferral:            ${savings.capex_deferral_usd:,.0f}")
    print(f"annual lease deferral:     ${savings.annual_lease_deferral_usd:,.0f}")
    print(f"annual outage avoided:     ${savings.annual_outage_avoided_usd:,.0f}")


def cable_failure_matrix(plant: FiberPlant, demands) -> None:
    report = cable_event_impacts(
        plant.topology, demands, plant.srlg_map()
    )
    worst = report.worst_binary_loss
    print(f"\ncable-failure impact ({len(report.impacts)} cables):")
    print(
        f"  fully survivable under binary failure: "
        f"{report.cables_fully_survivable}"
    )
    print(
        f"  worst cable ({worst.cable.removeprefix('fiber:')}): binary loses "
        f"{worst.binary_loss_gbps:.0f} Gbps, dynamic only "
        f"{worst.dynamic_loss_gbps:.0f} Gbps"
    )
    print(f"  mean traffic rescued per cable event: "
          f"{report.mean_rescued_gbps:.0f} Gbps")


def closed_loop_month(plant: FiberPlant, traces, demands) -> None:
    controller = DynamicCapacityController(
        plant.topology, policy=walk_policy(), seed=0
    )
    result = replay_controller(
        controller, traces, demands, te_interval_s=12 * 3600.0
    )
    print(
        f"\nclosed loop, 30 days @ 12 h TE rounds: "
        f"mean {result.mean_throughput_gbps:.0f} Gbps, "
        f"{result.total_capacity_changes} capacity changes, "
        f"{result.total_downtime_s:.2f} s reconfiguration downtime"
    )


def main() -> None:
    topology = us_backbone_like()
    plant = FiberPlant(topology, site_coordinates(topology), seed=7)
    demands = gravity_demands(topology, 5000.0, np.random.default_rng(2))
    traces = plant.synthesize_telemetry(days=30.0)

    show_plant(plant)
    price_the_headroom(plant, traces)
    cable_failure_matrix(plant, demands)
    closed_loop_month(plant, traces, demands)


if __name__ == "__main__":
    main()
