#!/usr/bin/env python
"""Throughput gains from SNR-adaptive capacities on a continental WAN.

A thin wrapper over the registered ``throughput`` experiment
(:mod:`repro.experiments`): sweeps demand scale on the 21-node
US-backbone-like topology and compares the TE throughput of the static
100 Gbps network against the dynamically-augmented one — the same code
path as ``repro throughput`` and the sweep runner.

Run:  python examples/wan_throughput_gains.py
"""

from repro.experiments import ScenarioSpec, render_result, run_spec


def main() -> None:
    spec = ScenarioSpec.create(
        "example/throughput",
        "throughput",
        scales=[0.25, 0.5, 1.0, 1.5, 2.0, 3.0],
    )
    result = run_spec(spec)
    print(render_result("throughput", result))
    saturated = result["points"][-1]
    print(
        f"\nat {saturated['scale']:.0f}x demand the dynamic network "
        f"carries {saturated['gain_ratio']:.2f}x the static throughput"
    )


if __name__ == "__main__":
    main()
