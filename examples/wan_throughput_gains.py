#!/usr/bin/env python
"""Throughput gains from SNR-adaptive capacities on a continental WAN.

Assigns each wavelength of a 21-node US-backbone-like topology an SNR
drawn from the synthetic telemetry study (the HDR lower bound, exactly
the paper's feasibility rule), then sweeps demand scale and compares
the TE throughput of the static 100 Gbps network against the
dynamically-augmented one.

Run:  python examples/wan_throughput_gains.py
"""

import numpy as np

from repro.analysis import render_series
from repro.net import gravity_demands, us_backbone_like
from repro.sim import simulate_throughput_gains
from repro.telemetry import BackboneConfig, BackboneDataset


def snr_assignment(topology, seed: int = 7) -> dict[str, float]:
    """Give each duplex wavelength an HDR-lower-bound SNR from telemetry."""
    dataset = BackboneDataset(BackboneConfig(n_cables=8, years=0.5, seed=seed))
    hdr_lows = [s.hdr.low for s in dataset.summaries()]
    rng = np.random.default_rng(seed)
    snrs: dict[str, float] = {}
    for link in topology.real_links():
        # both directions of a fiber pair share one optical path
        reverse = topology.links_between(link.dst, link.src)
        if reverse and reverse[0].link_id in snrs:
            snrs[link.link_id] = snrs[reverse[0].link_id]
        else:
            snrs[link.link_id] = float(rng.choice(hdr_lows))
    return snrs


def main() -> None:
    topology = us_backbone_like()
    demands = gravity_demands(topology, 6000.0, np.random.default_rng(1))
    snrs = snr_assignment(topology)

    points = simulate_throughput_gains(
        topology,
        demands,
        snrs,
        demand_scales=(0.25, 0.5, 1.0, 1.5, 2.0, 3.0),
    )
    rows = [
        (p.demand_scale, p.offered_gbps, p.static_gbps, p.dynamic_gbps,
         p.gain_ratio)
        for p in points
    ]
    print(
        render_series(
            "static vs dynamic TE throughput (Gbps)",
            rows,
            header=["scale", "offered", "static", "dynamic", "gain x"],
        )
    )
    saturated = points[-1]
    print(
        f"\nat {saturated.demand_scale:.0f}x demand the dynamic network "
        f"carries {saturated.gain_ratio:.2f}x the static throughput "
        f"(+{saturated.gain_gbps:.0f} Gbps)"
    )


if __name__ == "__main__":
    main()
