#!/usr/bin/env python
"""Quickstart: the paper's Figure-7 example, end to end.

Builds the four-node square, marks the upgradable wavelengths, augments
the topology (Algorithm 1), runs an unmodified min-cost max-throughput
TE on the augmented graph, and translates the result back into capacity
upgrades — showing that one upgrade serves both grown demands.

Run:  python examples/quickstart.py
"""

from repro.core import ConstantPenalty, augment_topology, translate
from repro.net import Demand, figure7_topology
from repro.optics import DEFAULT_MODULATIONS
from repro.te import MultiCommodityLp


def main() -> None:
    # 1. the physical network: a square of 100 Gbps wavelengths
    topology = figure7_topology()
    print(f"physical topology: {topology}")

    # 2. telemetry says the A-B and C-D wavelengths have SNR headroom
    for src, dst in (("A", "B"), ("B", "A"), ("C", "D"), ("D", "C")):
        link = topology.links_between(src, dst)[0]
        topology.replace_link(link.link_id, headroom_gbps=100.0)

    # 3. Algorithm 1: add fake links priced at the upgrade penalty
    augmented = augment_topology(
        topology, penalty_policy=ConstantPenalty(100.0)
    )
    print(f"augmented topology adds {augmented.n_fake_links} fake links")

    # 4. both demands grew from 100 to 125 Gbps (Section 4.1's example)
    demands = [Demand("A", "B", 125.0), Demand("C", "D", 125.0)]

    # 5. run an UNMODIFIED TE objective on the augmented graph
    outcome = MultiCommodityLp(
        augmented.topology, demands
    ).min_penalty_at_max_throughput()
    print(
        f"TE allocated {outcome.solution.total_allocated_gbps:.0f} Gbps "
        f"(penalty cost {outcome.solution.penalty_cost:.0f})"
    )

    # 6. translate the fake-link flows into capacity-change decisions
    result = translate(augmented, outcome.solution, table=DEFAULT_MODULATIONS)
    print(f"upgrades required: {len(result.upgrades)}")
    for upgrade in result.upgrades:
        print(
            f"  {upgrade.link_id}: {upgrade.old_capacity_gbps:.0f} -> "
            f"{upgrade.new_capacity_gbps:.0f} Gbps "
            f"(disrupting {upgrade.disrupted_traffic_gbps:.0f} Gbps of traffic)"
        )
    assert result.solution.is_valid(), "translated flows must satisfy physics"
    print("translated solution audits clean: capacity + conservation hold")


if __name__ == "__main__":
    main()
