#!/usr/bin/env python
"""The full closed loop: telemetry -> augment -> TE -> BVT.

Runs a :class:`DynamicCapacityController` over the Abilene backbone for
a week of synthetic SNR telemetry that includes a cable-wide amplifier
degradation, comparing the run / walk / crawl policies of the title:
throughput carried, capacity churn, and reconfiguration downtime.

Run:  python examples/closed_loop_controller.py
"""

import numpy as np

from repro.analysis import render_series
from repro.core import DynamicCapacityController, crawl_policy, run_policy, walk_policy
from repro.net import abilene, gravity_demands
from repro.optics.impairments import AmplifierDegradation
from repro.sim import replay_controller
from repro.telemetry import NoiseModel, Timebase
from repro.telemetry.traces import synthesize_cable_traces


def build_telemetry(topology, days=7.0, seed=11):
    """One week of 15-minute SNR samples for every wavelength.

    Midweek, an amplifier on the shared cable degrades for 12 hours,
    dropping every wavelength from ~15 dB to ~5 dB — failing binary
    links but leaving 50 Gbps feasible.
    """
    timebase = Timebase.from_duration(days=days)
    link_ids = [l.link_id for l in topology.real_links()]
    event = AmplifierDegradation(3.5 * 86_400.0, 12 * 3600.0, 10.0)
    rng = np.random.default_rng(seed)
    baselines = rng.uniform(13.0, 16.5, size=len(link_ids))
    traces = synthesize_cable_traces(
        "abilene-fiber",
        baselines,
        timebase,
        [event],
        {},
        NoiseModel(sigma_db=0.15, wander_amplitude_db=0.1),
        rng,
    )
    return dict(zip(link_ids, traces))


def main() -> None:
    topology = abilene()
    demands = gravity_demands(topology, 4000.0, np.random.default_rng(3))
    traces = build_telemetry(topology)

    rows = []
    for policy in (run_policy(), walk_policy(), crawl_policy()):
        controller = DynamicCapacityController(
            topology, policy=policy, seed=policy.name == "run" and 1 or 2
        )
        result = replay_controller(
            controller, traces, demands, te_interval_s=6 * 3600.0
        )
        rows.append(
            (
                policy.name,
                result.mean_throughput_gbps,
                float(result.throughput_gbps.min()),
                result.total_capacity_changes,
                result.total_downtime_s,
            )
        )

    print(
        render_series(
            "run / walk / crawl over one week (amplifier event midweek)",
            rows,
            header=["policy", "mean Gbps", "min Gbps", "changes", "downtime s"],
        )
    )
    print(
        "\nrun maximises throughput, crawl never upgrades, walk trades a"
        "\nlittle peak capacity for less churn — the title's spectrum."
    )


if __name__ == "__main__":
    main()
