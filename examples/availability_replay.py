#!/usr/bin/env python
"""Availability: failures vs. flaps (Section 2.2 of the paper).

Generates a synthetic backbone's SNR telemetry and replays it twice:
once under today's binary up/down rule (down whenever SNR < 6.5 dB) and
once with dynamic capacities (down only below the 50 Gbps rung at
3.0 dB).  Prints how many failures become capacity flaps and the
downtime saved — the paper finds ~25% of failures avoidable.

Run:  python examples/availability_replay.py
"""

from repro.analysis import render_distribution
from repro.sim import availability_report
from repro.telemetry import BackboneConfig, BackboneDataset


def main() -> None:
    config = BackboneConfig(n_cables=16, years=1.0, seed=42)
    dataset = BackboneDataset(config)
    print(
        f"replaying {dataset.n_links()} links x {config.years} years "
        f"of 15-minute SNR telemetry..."
    )

    report = availability_report(dataset.iter_traces())

    print(f"\nbinary failures observed:   {report.n_binary_failures}")
    print(
        f"avoided by dynamic capacity: {report.n_avoided} "
        f"({100.0 * report.avoided_fraction:.1f}% — paper: ~25%)"
    )
    print(f"downtime saved:             {report.total_downtime_saved_h:.0f} h")
    print(
        f"mean availability:          binary "
        f"{100.0 * report.mean_binary_availability:.4f}% -> dynamic "
        f"{100.0 * report.mean_dynamic_availability:.4f}%"
    )

    saved = [l.downtime_saved_h for l in report.links if l.downtime_saved_h > 0]
    if saved:
        print()
        print(render_distribution("per-link downtime saved", saved, unit="h"))


if __name__ == "__main__":
    main()
