#!/usr/bin/env python
"""The BVT testbed: why capacity changes take a minute, and the fix.

Drives the transceiver simulator over its MDIO register interface the
way the paper's testbed does, measuring the downtime of modulation
changes under the standard procedure (laser power-cycle) and the
efficient one (in-service constellation swap).  Also captures the
Figure-5 constellations.

Run:  python examples/hitless_reconfiguration.py
"""

import numpy as np

from repro.bvt import Bvt, MdioInterface, Register, Testbed


def mdio_walkthrough() -> None:
    """Register-level session, as a field engineer would script it."""
    print("== MDIO session ==")
    mdio = MdioInterface(Bvt(), np.random.default_rng(7))
    print(f"device id:       {mdio.read(Register.DEVICE_ID):#06x}")
    print(f"current rung:    {mdio.read(Register.CURRENT_MOD)} (100 Gbps)")

    standard_ms = mdio.set_modulation(200.0)
    print(f"standard change to 200 Gbps: {standard_ms / 1000.0:.1f} s downtime")

    efficient_ms = mdio.set_modulation(150.0, efficient=True)
    print(f"efficient change to 150 Gbps: {efficient_ms} ms downtime")


def figure6_experiment() -> None:
    print("\n== 200-trial modulation-change experiment (Figure 6b) ==")
    report = Testbed(seed=68).run_figure6_experiment(200)
    print(
        f"standard  (laser power-cycle): mean {report.standard_mean_s:6.1f} s  "
        f"min {report.standard_downtimes_s.min():.1f} s  "
        f"max {report.standard_downtimes_s.max():.1f} s"
    )
    print(
        f"efficient (laser stays lit):   mean "
        f"{1000.0 * report.efficient_mean_s:6.1f} ms "
        f"min {1000.0 * report.efficient_downtimes_s.min():.1f} ms  "
        f"max {1000.0 * report.efficient_downtimes_s.max():.1f} ms"
    )
    print(f"speedup: {report.speedup:,.0f}x  (paper: 68 s -> 35 ms)")


def figure5_constellations() -> None:
    print("\n== received constellations (Figure 5) ==")
    testbed = Testbed(seed=5)
    print(f"testbed line SNR: {testbed.snr_db:.1f} dB")
    for capacity in Testbed.FIGURE5_CAPACITIES_GBPS:
        sample = testbed.capture_constellation(capacity)
        name = testbed.table.format_for_capacity(capacity).name
        print(
            f"{capacity:5.0f} Gbps ({name:>5}): EVM {sample.evm_percent:4.1f}%  "
            f"SER {sample.symbol_error_rate:.2e}"
        )


if __name__ == "__main__":
    mdio_walkthrough()
    figure6_experiment()
    figure5_constellations()
