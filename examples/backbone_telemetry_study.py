#!/usr/bin/env python
"""The Section-2 measurement study on the synthetic backbone.

A thin wrapper over the registered ``study`` experiment
(:mod:`repro.experiments`): the same code path the CLI and the sweep
runner execute, so the numbers printed here are exactly what a sweep
artifact would store.  Pass ``--full`` for the paper-scale 2,000-link
2.5-year corpus.

Run:  python examples/backbone_telemetry_study.py [--full]
"""

import sys

from repro.experiments import ScenarioSpec, render_result, run_spec


def main(full: bool = False) -> None:
    params = {"cables": 55, "years": 2.5} if full else {}
    spec = ScenarioSpec.create("example/study", "study", **params)
    result = run_spec(spec)
    print(render_result("study", result))


if __name__ == "__main__":
    main(full="--full" in sys.argv)
