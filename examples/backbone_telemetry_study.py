#!/usr/bin/env python
"""The Section-2 measurement study on the synthetic backbone.

Generates the telemetry corpus (a scaled-down default; pass --full for
the paper-scale 2,000-link 2.5-year study) and prints the headline
numbers next to the paper's: HDR width, SNR range, feasible capacities,
aggregate capacity gain, and the rescuable-failure fraction.

Run:  python examples/backbone_telemetry_study.py [--full]
"""

import sys

import numpy as np

from repro.analysis import figures, render_cdf
from repro.telemetry import BackboneConfig, BackboneDataset


def main(full: bool = False) -> None:
    config = (
        BackboneConfig()  # 55 cables, 2.5 years: the paper's scale
        if full
        else BackboneConfig(n_cables=14, years=1.0, seed=2017)
    )
    dataset = BackboneDataset(config)
    print(
        f"synthesising {dataset.n_links()} links x {config.years} years "
        f"({config.timebase().n_samples} samples each)..."
    )
    summaries = dataset.summaries()

    fig2a = figures.fig2a_snr_variation(summaries)
    print("\n-- Figure 2a: SNR variation --")
    print(render_cdf("HDR(95%) width", fig2a.hdr_widths_db,
                     points=[1.0, 2.0, 4.0], unit=" dB"))
    print(
        f"HDR < 2 dB for {100.0 * fig2a.frac_hdr_below_2db:.0f}% of links "
        f"(paper: 83%)"
    )
    print(f"mean SNR range: {fig2a.mean_range_db:.1f} dB (paper: ~12 dB)")

    fig2b = figures.fig2b_feasible_capacity(summaries)
    print("\n-- Figure 2b: feasible capacity --")
    for capacity in (125.0, 150.0, 175.0, 200.0):
        frac = float(np.mean(fig2b.feasible_gbps >= capacity))
        print(f"  >= {capacity:3.0f} Gbps: {100.0 * frac:5.1f}% of links")
    print(
        f"aggregate headroom: {fig2b.total_gain_tbps:.1f} Tbps over "
        f"{len(summaries)} links (paper: 145 Tbps over >2,000)"
    )

    fig4c = figures.fig4c_failure_snr(summaries)
    print("\n-- Figure 4c: lowest SNR at 100G failures --")
    print(render_cdf("failure min SNR", fig4c.min_snrs_db,
                     points=[0.0, 3.0, 6.0], unit=" dB"))
    print(
        f"rescuable at 50 Gbps (min SNR >= 3 dB): "
        f"{100.0 * fig4c.frac_at_least_3db:.0f}% of failures (paper: ~25%)"
    )


if __name__ == "__main__":
    main(full="--full" in sys.argv)
